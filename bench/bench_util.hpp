#pragma once
/// Shared helpers for the experiment harness binaries (bench_e1 .. e9).
/// Every binary is standalone: it runs its sweep and prints the rows that
/// EXPERIMENTS.md records, on deterministic seeds.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lina/table.hpp"

namespace aspen::bench {

/// True when ASPEN_BENCH_SMOKE is set to a non-empty, non-"0" value.
/// The CTest `bench_smoke` label runs every harness in this mode so a
/// broken sweep is caught cheaply; full runs are the default.
inline bool smoke_mode() {
  const char* v = std::getenv("ASPEN_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Sample-count helper: `full` normally, `tiny` under smoke mode.
inline int samples(int full, int tiny = 1) {
  return smoke_mode() ? tiny : full;
}

inline void header(const char* experiment, const char* claim) {
  std::printf("################################################################\n");
  std::printf("# %s\n", experiment);
  std::printf("# paper hook: %s\n", claim);
  std::printf("################################################################\n\n");
}

inline void show(lina::Table& t) {
  t.print(std::cout);
  std::cout << "\n";
}

/// One machine-readable microbenchmark result row.
struct BenchRow {
  std::string name;   ///< kernel identifier, stable across PRs
  double ns_per_op;   ///< measured value (unit below, ns/op by default)
  int ports;          ///< problem size (0 when not size-parameterized)
  std::string unit = "ns/op";  ///< measurement unit (e.g. "x" for ratios)
};

/// Write benchmark rows as a JSON array (e.g. BENCH_mesh.json) so CI can
/// archive the performance trajectory as a workflow artifact.
inline void json_report(const std::string& path,
                        const std::vector<BenchRow>& rows) {
  std::ofstream os(path);
  os.precision(3);
  os << std::fixed << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "  {\"name\": \"" << rows[i].name
       << "\", \"ns_per_op\": " << rows[i].ns_per_op
       << ", \"ports\": " << rows[i].ports
       << ", \"unit\": \"" << rows[i].unit << "\"}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace aspen::bench
