// E2 — Robustness of the mesh architectures to fabrication error.
// Paper Section 6: "Various MZI mesh architectures are evaluated for the
// MVM core, including their performance, matrix expressivity and
// robustness." Fldzhyan et al. (ref [10]) is the error-tolerant design;
// in-situ recalibration ("error-aware programming") is the second axis.
//
// Series 1: fidelity vs coupler-imbalance sigma (direct programming).
// Series 2: fidelity vs coupler-imbalance sigma (with recalibration).
// Series 3: fidelity vs phase-error sigma (direct), N = 8.
#include <iterator>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "mesh/analysis.hpp"

namespace {

using namespace aspen;
using mesh::Architecture;

constexpr Architecture kArchs[] = {
    Architecture::kReck, Architecture::kClements, Architecture::kClementsSym,
    Architecture::kRedundant, Architecture::kFldzhyan};

const char* kArchNames[] = {"reck", "clements", "clements_sym", "redundant",
                            "fldzhyan"};

void sweep(const char* title, bool vary_coupler, bool recalibrate,
           std::size_t n, int samples, const char* row_tag,
           std::vector<aspen::bench::BenchRow>* rows) {
  lina::Table t(title);
  t.set_header({"sigma", "reck", "clements", "clements-sym", "redundant",
                "fldzhyan"});
  for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    std::vector<std::string> row{lina::Table::num(sigma, 2)};
    for (std::size_t k = 0; k < std::size(kArchs); ++k) {
      mesh::MeshErrorModel em;
      if (vary_coupler)
        em.coupler_sigma = sigma;
      else
        em.phase_sigma = sigma;
      const auto r = mesh::haar_ensemble_fidelity(kArchs[k], n, em, samples,
                                                  recalibrate, /*seed=*/31);
      row.push_back(lina::Table::num(r.fidelity.mean(), 5));
      // One representative error level per sweep goes into the JSON
      // trajectory (0.05 rad sits on the knee of every curve).
      if (sigma == 0.05 && rows != nullptr)
        rows->push_back({std::string(row_tag) + "_" + kArchNames[k],
                         r.fidelity.mean(), static_cast<int>(n), "fidelity"});
    }
    t.add_row(row);
  }
  bench::show(t);
}

}  // namespace

int main() {
  bench::header("E2  robustness to fabrication error",
                "Sec.6: architectures evaluated for robustness; [10] is the "
                "error-tolerant design");
  const std::size_t n = 6;
  const int samples = bench::samples(3);
  std::vector<bench::BenchRow> rows;
  sweep("fidelity vs coupler-imbalance sigma [rad] — direct programming",
        /*vary_coupler=*/true, /*recalibrate=*/false, n, samples,
        "coupler_direct", &rows);
  sweep("fidelity vs coupler-imbalance sigma [rad] — with in-situ "
        "recalibration",
        true, true, n, samples, "coupler_recal", &rows);
  sweep("fidelity vs phase-error sigma [rad] — direct programming", false,
        false, n, samples, "phase_direct", &rows);
  sweep("fidelity vs phase-error sigma [rad] — with in-situ recalibration",
        false, true, n, samples, "phase_recal", &rows);

  // Ablation: thermal crosstalk between heaters only exists while
  // *holding* phases thermo-optically; non-volatile PCM weights hold
  // passively and are immune — a robustness benefit of Section 3's
  // non-volatility argument beyond the energy one.
  {
    lina::Table t("fidelity vs thermal crosstalk (Clements N=6, direct "
                  "programming): thermo-optic vs PCM hold");
    t.set_header({"crosstalk", "thermo-optic", "PCM (GeSe 8-bit)"});
    lina::Rng rng(77);
    for (double xt : {0.0, 0.01, 0.02, 0.05, 0.10}) {
      lina::Stats thermo, pcm;
      for (int s = 0; s < samples; ++s) {
        const lina::CMat target = lina::haar_unitary(n, rng);
        const auto pm = mesh::clements_decompose(target);
        mesh::MeshErrorModel em;
        em.thermal_crosstalk = xt;
        em.seed = 900 + static_cast<std::uint64_t>(s);
        mesh::PhysicalMesh m1(pm.layout, em);
        m1.program(pm.phases);
        thermo.add(lina::CMat::fidelity(target, m1.transfer()));
        mesh::PhysicalMesh m2(pm.layout, em);
        m2.program(pm.phases);
        auto cfg = aspen::phot::pcm_config_for_two_pi(aspen::phot::make_gese());
        cfg.level_bits = 8;
        m2.enable_pcm(cfg);
        pcm.add(lina::CMat::fidelity(target, m2.transfer()));
      }
      t.add_row({lina::Table::num(xt, 2), lina::Table::num(thermo.mean(), 5),
                 lina::Table::num(pcm.mean(), 5)});
      if (xt == 0.05) {
        rows.push_back({"crosstalk_thermo_optic", thermo.mean(),
                        static_cast<int>(n), "fidelity"});
        rows.push_back({"crosstalk_pcm_hold", pcm.mean(),
                        static_cast<int>(n), "fidelity"});
      }
    }
    bench::show(t);
  }
  bench::json_report("BENCH_e2.json", rows);
  return 0;
}
