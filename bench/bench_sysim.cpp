// Sysim execution-core benchmarks: end-to-end workload and fault-campaign
// wall time under the legacy engine (decode-every-fetch interpreter +
// per-cycle System ticking, the seed behavior) vs the optimized engine
// (predecoded micro-op cache + DRAM fast path + event-driven bulk cycle
// skipping). The two paths are pinned bit-identical by
// tests/test_sysim_diff.cpp, so the speedup rows are apples-to-apples.
//
// Workload rows time System::run() on a pre-staged system — platform
// construction (DRAM allocation, photonic mesh build) is identical in
// both modes and excluded. The fault-campaign row is timed end-to-end
// exactly as FaultCampaign users experience it, per-trial system
// construction included. Standalone (chrono-based); emits
// BENCH_sysim.json for CI artifacts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;
using Clock = std::chrono::steady_clock;

std::vector<bench::BenchRow> rows;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

void push_row(const char* name, int size, double value, const char* unit) {
  std::printf("%-36s n=%-3d %12.2f %s\n", name, size, value, unit);
  rows.push_back({name, value, size, unit});
}

void record_speedup(const char* name, int size, double legacy_us,
                    double fast_us) {
  push_row(name, size, legacy_us / fast_us, "x");
}

/// Execution tiers under test: the seed's decode-every-fetch interpreter
/// with per-cycle ticking, the predecoded uop-at-a-time engine, and the
/// basic-block translation tier (block cache + chaining + fusion +
/// constant folding). All three are pinned bit-identical by
/// tests/test_sysim_diff.cpp. Constant folding is pinned explicitly so
/// the rows are deterministic regardless of ASPEN_BLOCK_CONSTFOLD.
SystemConfig tier_config(const SystemConfig& base, bool legacy, bool block,
                         bool constfold = true) {
  SystemConfig sc = base;
  sc.event_driven = !legacy;
  sc.cpu.legacy_decode = legacy;
  sc.cpu.block_tier = block;
  sc.cpu.block_constfold = constfold;
  return sc;
}

struct Workload {
  SystemConfig sc;
  GemmWorkload wl;   ///< staged extent (m covers all streamed tiles)
  std::vector<std::uint32_t> program;
  std::vector<std::int16_t> a, x;
};

/// Staging callback: writes data + program into a fresh system.
using Stager = std::function<void(System&)>;

/// One fresh-system execution; returns simulated cycles and optionally
/// the block-tier counters of the run.
std::uint64_t probe_run(const Stager& stage, const SystemConfig& sc,
                        rv::BlockStats* stats = nullptr) {
  System system(sc);
  stage(system);
  const auto r = system.run();
  if (r.halt != rv::Halt::kEcallExit) {
    std::fprintf(stderr, "bench_sysim: workload did not exit cleanly\n");
    std::exit(1);
  }
  if (stats != nullptr) *stats = system.cpu().block_stats();
  return r.cycles;
}

std::uint64_t probe_run(const Workload& w, const SystemConfig& sc,
                        rv::BlockStats* stats = nullptr) {
  return probe_run(
      [&](System& system) {
        stage_gemm_data(system, w.wl, w.a, w.x);
        system.load_program(w.program);
      },
      sc, stats);
}

/// Run-only wall time, averaged over enough repetitions to fill the
/// measurement budget. The system is staged once and snapshot/restored
/// per rep (outside the timed window): restore keeps each engine's
/// set_matrix programming memo warm, so offload rows measure the
/// execution tier, not per-rep weight-calibration math — the
/// single-shot floor the PR 3 notes flagged.
double record_runs(const char* name, std::size_t n, const Stager& stage,
                   const SystemConfig& sc) {
  System system(sc);
  stage(system);
  const System::SystemSnapshot snap = system.snapshot();
  const auto run_once = [&]() {
    system.restore(snap);
    const auto t0 = Clock::now();
    const auto r = system.run();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r.halt != rv::Halt::kEcallExit) {
      std::fprintf(stderr, "bench_sysim: workload did not exit cleanly\n");
      std::exit(1);
    }
    return s;
  };
  const double once = run_once();  // warm up (fills programming memos)
  const double budget = bench::smoke_mode() ? 0.005 : 0.25;
  int reps = once > 0.0 ? static_cast<int>(budget / once) : 100;
  if (reps < 1) reps = 1;
  if (reps > 2000) reps = 2000;
  double total = 0.0;
  for (int i = 0; i < reps; ++i) total += run_once();
  const double us = total / reps * 1e6;
  std::printf("%-36s n=%-3zu %12.1f us/run  (%d reps)\n", name, n, us, reps);
  rows.push_back({name, us, static_cast<int>(n), "us/run"});
  return us;
}

double record_runs(const char* name, const Workload& w,
                   const SystemConfig& sc) {
  return record_runs(
      name, w.wl.n,
      [&](System& system) {
        stage_gemm_data(system, w.wl, w.a, w.x);
        system.load_program(w.program);
      },
      sc);
}

/// One workload across all three tiers; asserts identical simulated
/// cycle counts (cheap guard on top of the differential test suite) and
/// emits the block tier's counters from a single fresh run.
void bench_workload(const char* tag, const Workload& w,
                    const char* speedup_name) {
  const SystemConfig legacy_sc = tier_config(w.sc, true, false);
  const SystemConfig uop_sc = tier_config(w.sc, false, false);
  const SystemConfig block_sc = tier_config(w.sc, false, true);
  const SystemConfig nofold_sc = tier_config(w.sc, false, true, false);
  const std::uint64_t legacy_cycles = probe_run(w, legacy_sc);
  const std::uint64_t uop_cycles = probe_run(w, uop_sc);
  rv::BlockStats st;
  const std::uint64_t block_cycles = probe_run(w, block_sc, &st);
  // Folding is host-side only; simulated cycles must not move with it.
  const std::uint64_t nofold_cycles = probe_run(w, nofold_sc);
  if (legacy_cycles != uop_cycles || legacy_cycles != block_cycles ||
      legacy_cycles != nofold_cycles) {
    std::fprintf(
        stderr,
        "bench_sysim: cycle mismatch on %s (%llu / %llu / %llu / %llu)\n",
        tag, static_cast<unsigned long long>(legacy_cycles),
        static_cast<unsigned long long>(uop_cycles),
        static_cast<unsigned long long>(block_cycles),
        static_cast<unsigned long long>(nofold_cycles));
    std::exit(1);
  }

  const double legacy_us =
      record_runs((std::string(tag) + "_legacy").c_str(), w, legacy_sc);
  const double uop_us =
      record_runs((std::string(tag) + "_uop").c_str(), w, uop_sc);
  const double block_us =
      record_runs((std::string(tag) + "_block").c_str(), w, block_sc);
  const double nofold_us =
      record_runs((std::string(tag) + "_block_nofold").c_str(), w, nofold_sc);
  record_speedup(speedup_name, static_cast<int>(w.wl.n), legacy_us, block_us);
  record_speedup((std::string(tag) + "_block_vs_uop").c_str(),
                 static_cast<int>(w.wl.n), uop_us, block_us);
  record_speedup((std::string(tag) + "_fold_ratio").c_str(),
                 static_cast<int>(w.wl.n), nofold_us, block_us);

  const int n = static_cast<int>(w.wl.n);
  const std::string t(tag);
  rows.push_back({t + "_blk_built", static_cast<double>(st.blocks_built), n,
                  "blocks"});
  rows.push_back({t + "_blk_chained", static_cast<double>(st.chained), n,
                  "dispatches"});
  rows.push_back({t + "_blk_fused", static_cast<double>(st.fused_exec), n,
                  "pairs"});
  rows.push_back({t + "_blk_evictions", static_cast<double>(st.evictions), n,
                  "evictions"});
  rows.push_back({t + "_blk_hit_rate", 100.0 * st.hit_rate(), n, "%"});
  rows.push_back({t + "_blk_fold_built", static_cast<double>(st.folded_built),
                  n, "ops"});
  rows.push_back({t + "_blk_fold_exec", static_cast<double>(st.folded_exec),
                  n, "ops"});
  rows.push_back({t + "_rvc_built", static_cast<double>(st.rvc_built), n,
                  "insts"});
  rows.push_back({t + "_rvc_fetch_bytes", static_cast<double>(st.fetch_bytes),
                  n, "bytes"});
  std::printf(
      "  (cycles: %llu all tiers; blocks built %llu, dispatches %llu, "
      "chained %llu, fused %llu, folded %llu built / %llu exec, "
      "rvc %llu insts / %llu fetch bytes, evictions %llu, "
      "fallback steps %llu, hit rate %.1f%%)\n\n",
      static_cast<unsigned long long>(block_cycles),
      static_cast<unsigned long long>(st.blocks_built),
      static_cast<unsigned long long>(st.dispatches),
      static_cast<unsigned long long>(st.chained),
      static_cast<unsigned long long>(st.fused_exec),
      static_cast<unsigned long long>(st.folded_built),
      static_cast<unsigned long long>(st.folded_exec),
      static_cast<unsigned long long>(st.rvc_built),
      static_cast<unsigned long long>(st.fetch_bytes),
      static_cast<unsigned long long>(st.evictions),
      static_cast<unsigned long long>(st.fallback_steps),
      100.0 * st.hit_rate());
}

SystemConfig base_system() {
  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  sc.accel.max_cols = 64;
  return sc;
}

Workload make_workload(SystemConfig sc, std::size_t m,
                       std::vector<std::uint32_t> program) {
  Workload w;
  w.sc = sc;
  w.wl.n = 8;
  w.wl.m = m;
  w.program = std::move(program);
  w.a = random_fixed(w.wl.n * w.wl.n, 1000 + m);
  w.x = random_fixed(w.wl.n * w.wl.m, 2000 + m);
  return w;
}

void bench_rvc_loop() {
  // RVC-dense scramble/checksum loop: the hot loop is almost entirely
  // 2-byte forms (c.lw/c.sw, c.addi, CA/CB ALU ops), so this tracks
  // mixed 2/4-byte fetch, block building over compressed runs, and the
  // compressed-fetch counters across all three tiers.
  const SystemConfig base = base_system();
  const std::uint32_t words = 256;
  const std::uint32_t src_off = 0x40000, dst_off = 0x48000;
  const auto program = build_rvc_loop(base, src_off, dst_off, words);
  std::vector<std::uint32_t> data(words);
  for (std::uint32_t i = 0; i < words; ++i) data[i] = 0x9E3779B9u * (i + 1);
  const Stager stage = [&](System& system) {
    system.write_dram(src_off,
                      reinterpret_cast<const std::uint8_t*>(data.data()),
                      words * 4);
    system.load_program(program);
  };

  const SystemConfig legacy_sc = tier_config(base, true, false);
  const SystemConfig uop_sc = tier_config(base, false, false);
  const SystemConfig block_sc = tier_config(base, false, true);
  const std::uint64_t legacy_cycles = probe_run(stage, legacy_sc);
  const std::uint64_t uop_cycles = probe_run(stage, uop_sc);
  rv::BlockStats st;
  const std::uint64_t block_cycles = probe_run(stage, block_sc, &st);
  if (legacy_cycles != uop_cycles || legacy_cycles != block_cycles) {
    std::fprintf(
        stderr, "bench_sysim: cycle mismatch on rvc_loop (%llu / %llu / %llu)\n",
        static_cast<unsigned long long>(legacy_cycles),
        static_cast<unsigned long long>(uop_cycles),
        static_cast<unsigned long long>(block_cycles));
    std::exit(1);
  }

  const double legacy_us = record_runs("rvc_loop_legacy", words, stage,
                                       legacy_sc);
  const double uop_us = record_runs("rvc_loop_uop", words, stage, uop_sc);
  const double block_us = record_runs("rvc_loop_block", words, stage,
                                      block_sc);
  record_speedup("rvc_loop_speedup", static_cast<int>(words), legacy_us,
                 block_us);
  record_speedup("rvc_loop_block_vs_uop", static_cast<int>(words), uop_us,
                 block_us);

  const int n = static_cast<int>(words);
  rows.push_back({"rvc_loop_rvc_built", static_cast<double>(st.rvc_built), n,
                  "insts"});
  rows.push_back({"rvc_loop_rvc_fetch_bytes",
                  static_cast<double>(st.fetch_bytes), n, "bytes"});
  // Fetch bytes relative to an all-4-byte encoding of the same blocks
  // (fetch_bytes = 2*rvc + 4*rest, so the inst count is recoverable).
  const std::uint64_t insts =
      st.rvc_built + (st.fetch_bytes - 2 * st.rvc_built) / 4;
  const double density =
      insts != 0 ? 100.0 * static_cast<double>(st.fetch_bytes) /
                       (4.0 * static_cast<double>(insts))
                 : 100.0;
  push_row("rvc_loop_fetch_density", n, density, "%");
  std::printf(
      "  (cycles: %llu all tiers; rvc %llu of %llu insts built, "
      "%llu fetch bytes)\n\n",
      static_cast<unsigned long long>(block_cycles),
      static_cast<unsigned long long>(st.rvc_built),
      static_cast<unsigned long long>(insts),
      static_cast<unsigned long long>(st.fetch_bytes));
}

void bench_fault_campaign() {
  // e7-style reliability campaign, timed end-to-end (per-trial system
  // construction included, as FaultCampaign users pay it). Thermo-optic
  // weights + interrupt synchronization give the runs the long idle
  // windows real offload campaigns have.
  SystemConfig base = base_system();
  base.dram_size = 1u << 18;  // the workload fits in 256 KiB
  base.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  const auto a = random_fixed(wl.n * wl.n, 31);
  const auto x = random_fixed(wl.n * wl.m, 32);
  const auto program =
      build_gemm_offload(wl, base, OffloadPath::kMmrInterrupt);
  const int trials = bench::samples(40, 4);

  const auto campaign_us = [&](bool legacy) {
    const SystemConfig sc = tier_config(base, legacy, !legacy);
    const auto run_campaign = [&] {
      FaultCampaign campaign(
          [&]() {
            auto system = std::make_unique<System>(sc);
            stage_gemm_data(*system, wl, a, x);
            system->load_program(program);
            return system;
          },
          [&](System& s) {
            const auto y = read_gemm_result(s, wl);
            std::vector<std::uint8_t> bytes(y.size() * 2);
            memcpy(bytes.data(), y.data(), bytes.size());
            return bytes;
          },
          500000);
      lina::Rng rng(77);
      (void)campaign.run_campaign(FaultTarget::kCpuRegfile,
                                  FaultModel::kTransientFlip, trials, rng);
    };
    run_campaign();  // warm up
    const int reps = bench::samples(20, 2);
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) run_campaign();
    const double us =
        std::chrono::duration<double>(Clock::now() - t0).count() / reps * 1e6;
    std::printf("%-36s n=%-3zu %12.1f us/campaign  (%d reps, %d trials)\n",
                legacy ? "fault_campaign_e7_legacy" : "fault_campaign_e7_fast",
                wl.n, us, reps, trials);
    rows.push_back({legacy ? "fault_campaign_e7_legacy"
                           : "fault_campaign_e7_fast",
                    us, static_cast<int>(wl.n), "us/campaign"});
    return us;
  };
  const double legacy_us = campaign_us(true);
  const double fast_us = campaign_us(false);
  record_speedup("fault_campaign_e7_speedup", static_cast<int>(wl.n),
                 legacy_us, fast_us);
}

}  // namespace

int main() {
  bench::header("BENCH sysim — event-driven execution core",
                "Sec.5 campaigns run on the gem5-style platform; this "
                "tracks simulator wall time per PR (legacy vs predecoded+"
                "event-driven, bit-identical results)");

  {
    // Software GEMM: pure instruction throughput (no device-busy idle
    // windows) — isolates predecoded dispatch + DRAM fast path + bulk
    // memory-stall skipping.
    const SystemConfig sc = base_system();
    GemmWorkload wl;
    wl.n = 8;
    wl.m = 16;
    bench_workload("sw_gemm_m16",
                   make_workload(sc, 16, build_gemm_software(wl, sc)),
                   "sw_gemm_speedup");
  }
  {
    // E6-style accelerator offload (DMA + WFI, thermo-optic weights):
    // long device-busy windows — the bulk cycle skip's target. This is
    // the acceptance-tracked end-to-end row.
    SystemConfig sc = base_system();
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
    GemmWorkload wl;
    wl.n = 8;
    wl.m = 32;
    bench_workload(
        "offload_e6_dma_irq_thermo",
        make_workload(sc, 32,
                      build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt)),
        "offload_e6_speedup");
  }
  {
    // E6-style streaming offload: weights programmed once, square 8x8
    // tiles pushed through the PE back to back (the serving pattern
    // non-volatile weights enable) — CPU copy loops + WFI sync, with
    // DDR-class main-memory latency (40 cycles @ 1 GHz ~= a random DDR4
    // access; the 10-cycle default models an on-chip SRAM-like DRAM).
    // Long instruction bursts, bulk-skipped load/store stalls,
    // device-busy windows and WFI wakes; this is the
    // acceptance-tracked >= 5x row.
    SystemConfig sc = base_system();
    sc.dram_latency = 40;
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
    GemmWorkload tile;
    tile.n = 8;
    tile.m = 8;
    const std::size_t batches = 64;
    Workload w = make_workload(
        sc, tile.m * batches,
        build_gemm_offload_stream(tile, sc, OffloadPath::kMmrInterrupt,
                                  batches));
    bench_workload("offload_e6_stream8x8_mmr_irq", w,
                   "offload_e6_stream_speedup");
  }
  {
    // Wider 32-column tiles: more data movement per start, less wait
    // amortization — tracks the copy-loop-bound regime.
    SystemConfig sc = base_system();
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
    GemmWorkload tile;
    tile.n = 8;
    tile.m = 32;
    const std::size_t batches = 32;
    Workload w = make_workload(
        sc, tile.m * batches,
        build_gemm_offload_stream(tile, sc, OffloadPath::kMmrInterrupt,
                                  batches));
    bench_workload("offload_e6_stream32_mmr_irq", w,
                   "offload_e6_stream32_speedup");
  }
  {
    // PCM variant: short programming window, stresses dispatch + MMIO.
    SystemConfig sc = base_system();
    sc.accel.gemm.mvm.weights = core::WeightTechnology::kPcm;
    GemmWorkload wl;
    wl.n = 8;
    wl.m = 32;
    bench_workload(
        "offload_e6_dma_irq_pcm",
        make_workload(sc, 32,
                      build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt)),
        "offload_e6_pcm_speedup");
  }
  bench_rvc_loop();
  bench_fault_campaign();

  bench::json_report("BENCH_sysim.json", rows);
  std::printf("\nwrote BENCH_sysim.json (%zu rows)\n", rows.size());
  return 0;
}
