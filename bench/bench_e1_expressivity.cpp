// E1 — Matrix expressivity / universality of the mesh architectures.
// Paper Section 4: "multiport interferometers with a degree of matrix
// expressivity (universality) determined by component arrangement".
//
// Series 1: Haar-ensemble infidelity on perfect hardware per architecture
//           and mesh size (analytic decompositions should be exact to
//           numerical precision; the optimization-programmed Fldzhyan
//           design approaches but does not reach machine epsilon).
// Series 2: universality crossover — best achievable fidelity of the
//           Fldzhyan design vs number of phase layers; universality
//           requires ~n+1 layers (n^2 + n parameters >= n^2 DOF).
#include "bench_util.hpp"
#include "lina/random.hpp"
#include "mesh/analysis.hpp"

int main() {
  using namespace aspen;
  using mesh::Architecture;

  bench::header("E1  mesh expressivity (universality)",
                "Sec.4 / Fig.2b: expressivity determined by arrangement");

  {
    lina::Table t("Haar-ensemble infidelity (perfect hardware, mean of 1-F)");
    t.set_header({"N", "reck", "clements", "clements-sym", "redundant",
                  "fldzhyan(opt)"});
    const mesh::MeshErrorModel perfect{};  // losses only, no disorder
    for (std::size_t n : {4, 6, 8, 12, 16}) {
      std::vector<std::string> row{lina::Table::num(double(n))};
      for (auto arch :
           {Architecture::kReck, Architecture::kClements,
            Architecture::kClementsSym, Architecture::kRedundant,
            Architecture::kFldzhyan}) {
        if (arch == Architecture::kFldzhyan && n > 8) {
          row.push_back("-");  // optimizer cost grows steeply; see series 2
          continue;
        }
        const int samples =
            bench::samples(arch == Architecture::kFldzhyan ? 3 : 5);
        const auto r = mesh::haar_ensemble_fidelity(
            arch, n, perfect, samples, /*recalibrate=*/false, /*seed=*/11);
        row.push_back(lina::Table::sci(r.infidelity.mean()));
      }
      t.add_row(row);
    }
    bench::show(t);
  }

  {
    lina::Table t(
        "Fldzhyan universality crossover at N=6 (phase layers sweep; "
        "universal design needs ~N+1 layers)");
    t.set_header({"phase-layers", "params", "DOF(U(6))", "mean fidelity",
                  "worst fidelity"});
    lina::Rng rng(23);
    for (std::size_t layers : {2u, 3u, 4u, 5u, 6u, 7u, 9u, 12u}) {
      lina::Stats fid;
      for (int s = 0; s < bench::samples(3); ++s) {
        const lina::CMat target = lina::haar_unitary(6, rng);
        mesh::PhysicalMesh twin(mesh::fldzhyan_layout(6, layers),
                                mesh::MeshErrorModel{});
        mesh::CalibrationOptions opt;
        opt.restarts = 3;
        opt.seed = 1000 + s;
        const auto rep = mesh::calibrate(twin, target, opt);
        fid.add(rep.final_fidelity);
      }
      t.add_row({lina::Table::num(double(layers)),
                 lina::Table::num(double(6 * layers)), "36",
                 lina::Table::num(fid.mean(), 5),
                 lina::Table::num(fid.min(), 5)});
    }
    bench::show(t);
  }
  return 0;
}
