// Mesh micro-benchmarks: the hot loops behind every experiment harness —
// single-phase set_phase + transfer (the column-factored cache's O(N^2)
// incremental path vs the from-scratch rebuild), in-situ calibration at
// 8/16/32 ports, and batched vs looped MVM. Standalone (chrono-based, no
// external benchmark dependency) so it always builds; emits the rows both
// as a table and as machine-readable BENCH_mesh.json for CI artifacts.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/mvm_engine.hpp"
#include "lina/random.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "mesh/physical_mesh.hpp"

namespace {

using namespace aspen;
using Clock = std::chrono::steady_clock;

std::vector<bench::BenchRow> rows;

/// Time fn() and record ns per op (one call counts as `ops_per_call`
/// operations). Repetitions are sized so the timed region lasts about
/// `target_s`; smoke mode shrinks that to a sanity check.
template <class F>
double record(const char* name, int ports, F&& fn, double target_s = 0.2,
              double ops_per_call = 1.0) {
  fn();  // warm up (and populate caches)
  const auto probe0 = Clock::now();
  fn();
  const double once =
      std::chrono::duration<double>(Clock::now() - probe0).count();
  const double budget = bench::smoke_mode() ? 0.01 : target_s;
  int reps = once > 0.0 ? static_cast<int>(budget / once) : 1000;
  if (reps < 1) reps = 1;
  if (reps > 1000000) reps = 1000000;
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const double total =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double ns = total / (reps * ops_per_call) * 1e9;
  std::printf("%-34s ports=%-3d %14.1f ns/op  (%d reps)\n", name, ports, ns,
              reps);
  rows.push_back({name, ns, ports});
  return ns;
}

void bench_transfer(std::size_t n) {
  lina::Rng rng(100 + n);
  const auto pm = mesh::clements_decompose(lina::haar_unitary(n, rng));
  mesh::MeshErrorModel em;
  em.coupler_sigma = 0.02;
  mesh::PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  (void)mesh.transfer();  // build the cache once

  // Incremental path: one phase nudge -> one column rebuild + rank-one
  // updates against the cached prefix/suffix products.
  std::size_t slot = 0;
  double bump = 1e-3;
  record("set_phase_transfer_incremental", static_cast<int>(n), [&] {
    mesh.set_phase(slot, mesh.phase(slot) + bump);
    (void)mesh.transfer();
    slot = (slot + 1) % mesh.phase_count();
    bump = -bump;
  });

  // Reference: the from-scratch O(columns * N^2) evaluation.
  record("transfer_from_scratch", static_cast<int>(n),
         [&] { (void)mesh.transfer_uncached(); });
}

void bench_calibrate(std::size_t n) {
  lina::Rng rng(900 + n);
  const lina::CMat target = lina::haar_unitary(n, rng);
  const auto pm = mesh::clements_decompose(target);
  mesh::MeshErrorModel em;
  em.coupler_sigma = 0.02;
  em.phase_sigma = 0.02;
  em.seed = 555;
  mesh::CalibrationOptions opt;
  if (bench::smoke_mode()) opt.max_sweeps = 2;
  record(
      "calibrate_clements", static_cast<int>(n),
      [&] {
        mesh::PhysicalMesh mesh(pm.layout, em);
        mesh.program(pm.phases);
        (void)mesh::calibrate(mesh, target, opt);
      },
      0.5);
}

void bench_mvm(std::size_t n, std::size_t batch) {
  core::MvmConfig cfg;
  cfg.ports = n;
  core::MvmEngine eng_batch(cfg);
  core::MvmEngine eng_loop(cfg);
  lina::Rng rng(7);
  const lina::CMat w = lina::random_real(n, n, rng);
  eng_batch.set_matrix(w);
  eng_loop.set_matrix(w);
  lina::CMat x(n, batch);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < batch; ++c)
      x(r, c) = lina::cplx{rng.uniform(-1.0, 1.0), 0.0};

  const auto per_vec = static_cast<double>(batch);
  record(
      "mvm_multiply_batch_per_vec", static_cast<int>(n),
      [&] {
        const lina::CMat y = eng_batch.multiply_batch(x);
        (void)y;
      },
      0.2, per_vec);

  record(
      "mvm_multiply_looped_per_vec", static_cast<int>(n),
      [&] {
        for (std::size_t c = 0; c < batch; ++c)
          (void)eng_loop.multiply(x.col(c));
      },
      0.2, per_vec);
}

}  // namespace

int main() {
  bench::header("BENCH mesh — transfer cache / calibration / batched MVM",
                "in-situ programming and MVM scheduling are the paper's "
                "core loops; this tracks their cost per PR");

  for (std::size_t n : {8, 16, 32}) bench_transfer(n);
  for (std::size_t n : {8, 16, 32}) bench_calibrate(n);
  bench_mvm(16, 64);

  bench::json_report("BENCH_mesh.json", rows);
  std::printf("\nwrote BENCH_mesh.json (%zu rows)\n", rows.size());
  return 0;
}
