// E9 — Speed / energy / footprint of the accelerator configurations.
// Paper abstract: "This simulation platform enables accurate system-level
// accelerator modeling and benchmarking in terms of key metrics such as
// speed, energy consumption, and footprint."
//
// Series 1: per-architecture metrics at N = 8 (Fig. 2b scale).
// Series 2: scaling with mesh size for the Clements MVM core.
// Series 3: WDM channel count vs throughput/area (GeMM mode).
#include "bench_util.hpp"
#include "core/energy_model.hpp"
#include "photonics/link_budget.hpp"

namespace {

using namespace aspen;

void add_report_row(lina::Table& t, const std::string& label,
                    const core::AcceleratorReport& r) {
  t.add_row({label, lina::Table::num(r.area_mm2, 3),
             lina::Table::num(r.insertion_loss_db, 1),
             lina::Table::num(r.static_power_w, 2),
             lina::Table::num(r.energy_per_mvm_j * 1e12, 1),
             lina::Table::num(r.throughput_ops_s / 1e9, 0),
             lina::Table::num(r.tops_per_watt, 2)});
}

}  // namespace

int main() {
  bench::header("E9  speed / energy / footprint",
                "abstract: key metrics — speed, energy consumption, "
                "footprint");

  {
    lina::Table t("architecture comparison at N=8 (PCM weights, reuse 1e6)");
    t.set_header({"architecture", "area mm2", "IL dB", "static W", "pJ/MVM",
                  "GOPS", "TOPS/W"});
    for (auto arch :
         {mesh::Architecture::kReck, mesh::Architecture::kClements,
          mesh::Architecture::kClementsSym, mesh::Architecture::kRedundant,
          mesh::Architecture::kFldzhyan}) {
      core::MvmConfig cfg;
      cfg.ports = 8;
      cfg.architecture = arch;
      cfg.weights = core::WeightTechnology::kPcm;
      add_report_row(t, mesh::to_string(arch),
                     core::evaluate_accelerator(cfg));
    }
    bench::show(t);
  }

  {
    lina::Table t("mesh-size scaling (Clements, PCM vs thermo)");
    t.set_header({"N / weights", "area mm2", "IL dB", "static W", "pJ/MVM",
                  "GOPS", "TOPS/W"});
    for (std::size_t n : {8, 16, 32, 64}) {
      for (const bool pcm : {true, false}) {
        core::MvmConfig cfg;
        cfg.ports = n;
        cfg.weights = pcm ? core::WeightTechnology::kPcm
                          : core::WeightTechnology::kThermoOptic;
        add_report_row(t,
                       std::to_string(n) + (pcm ? " pcm" : " thermo"),
                       core::evaluate_accelerator(cfg));
      }
    }
    bench::show(t);
  }

  {
    // Section 3: PCM shifters must be "compact with minimized optical
    // loss to enable deep arrangements of MZIs" — this table quantifies
    // how deep: the largest Clements mesh whose output still meets an
    // ENOB target at the detector, per launch power.
    lina::Table t("maximum viable mesh size vs launch power (per-MZI "
                  "column loss 0.22 dB, shot+thermal-limited detector)");
    t.set_header({"launch dBm", "max N @ 4 bits", "max N @ 6 bits",
                  "max N @ 8 bits"});
    const aspen::phot::Photodetector det{aspen::phot::PhotodetectorConfig{}};
    for (double dbm : {0.0, 10.0, 20.0}) {
      std::vector<std::string> row{lina::Table::num(dbm, 0)};
      for (double bits : {4.0, 6.0, 8.0}) {
        std::size_t best = 0;
        for (std::size_t n = 2; n <= 512; n *= 2) {
          // Two meshes of depth n columns + IO; per-port launch power.
          aspen::phot::LinkBudget lb(aspen::phot::dbm_to_watt(dbm) /
                                     static_cast<double>(n));
          lb.add("modulator", 3.0)
              .add_repeated("mesh-column", 0.22,
                            static_cast<int>(2 * n))
              .add("attenuator", 0.2);
          if (lb.enob(det) >= bits) best = n;
        }
        row.push_back(best > 0 ? lina::Table::num(double(best)) : "-");
      }
      t.add_row(row);
    }
    bench::show(t);
  }

  {
    lina::Table t("DWDM scaling at N=8 (PCM weights; mesh shared, IO "
                  "replicated)");
    t.set_header({"channels", "area mm2", "IL dB", "static W", "pJ/MVM",
                  "GOPS", "TOPS/W"});
    for (int k : {1, 2, 4, 8, 16}) {
      core::MvmConfig cfg;
      cfg.ports = 8;
      cfg.weights = core::WeightTechnology::kPcm;
      add_report_row(t, std::to_string(k),
                     core::evaluate_accelerator(cfg, 1e6, k));
    }
    bench::show(t);
  }
  return 0;
}
