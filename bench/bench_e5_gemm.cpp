// E5 — GeMM scheduling: TDM vs DWDM channel parallelism.
// Paper Section 4: "Generalization to GeMM operations can be realized
// through separating of the input matrix into rows, and processing those
// either via time-division multiplexing or through encoding into multiple
// dense wavelength division multiplexed (DWDM) channels that can be
// processed in parallel in a single multiport interferometer without
// incurring additional resource costs."
//
// Series 1: symbols / throughput / energy-efficiency vs WDM channel count
//           (same mesh; only IO replicates).
// Series 2: accuracy penalty vs channel isolation (crosstalk).
// Series 3: wall-clock symbols vs input-matrix width for TDM vs 8-ch WDM.
#include "bench_util.hpp"
#include "core/gemm_core.hpp"
#include "lina/random.hpp"

namespace {

using namespace aspen;

core::GemmConfig base_config() {
  core::GemmConfig gc;
  gc.mvm.ports = 8;
  return gc;
}

}  // namespace

int main() {
  bench::header("E5  GeMM: TDM vs DWDM row parallelism",
                "Sec.4: DWDM channels processed in parallel in one mesh "
                "without additional resource cost");

  lina::Rng rng(3);
  const lina::CMat w = lina::random_real(8, 8, rng);
  const lina::CMat x = lina::random_real(8, 64, rng, -0.5, 0.5);
  const lina::CMat exact = w * x;

  {
    lina::Table t("WDM channel sweep (N=8, 64 input columns, 25 dB "
                  "isolation)");
    t.set_header({"channels", "symbols", "GOPS", "GOPS/W", "rel error"});
    for (int k : {1, 2, 4, 8, 16}) {
      core::GemmConfig gc = base_config();
      gc.wdm_channels = k;
      core::GemmCore gemm(gc);
      gemm.set_weights(w);
      const lina::CMat y = gemm.multiply(x);
      const auto& s = gemm.last_stats();
      t.add_row({lina::Table::num(double(k)),
                 lina::Table::num(double(s.symbols)),
                 lina::Table::num(s.ops_per_second() / 1e9, 1),
                 lina::Table::num(s.ops_per_joule() / 1e9, 2),
                 lina::Table::num(lina::CMat::rel_error(exact, y), 4)});
    }
    bench::show(t);
  }

  {
    lina::Table t("accuracy vs DWDM channel isolation (8 channels)");
    t.set_header({"isolation dB", "rel error"});
    for (double iso : {15.0, 20.0, 25.0, 30.0, 40.0}) {
      core::GemmConfig gc = base_config();
      gc.wdm_channels = 8;
      gc.channel_isolation_db = iso;
      core::GemmCore gemm(gc);
      gemm.set_weights(w);
      const lina::CMat y = gemm.multiply(x);
      t.add_row({lina::Table::num(iso, 0),
                 lina::Table::num(lina::CMat::rel_error(exact, y), 4)});
    }
    bench::show(t);
  }

  {
    lina::Table t("accuracy vs channel count under coupler dispersion "
                  "(0.8 nm DWDM grid, 0.006 rad/nm couplers)");
    t.set_header({"channels", "grid span nm", "rel error"});
    for (int k : {1, 2, 4, 8, 16}) {
      core::GemmConfig gc = base_config();
      gc.wdm_channels = k;
      gc.channel_spacing_nm = 0.8;
      core::GemmCore gemm(gc);
      gemm.set_weights(w);
      const lina::CMat y = gemm.multiply(x);
      t.add_row({lina::Table::num(double(k)),
                 lina::Table::num((k - 1) * 0.8, 1),
                 lina::Table::num(lina::CMat::rel_error(exact, y), 4)});
    }
    bench::show(t);
  }

  {
    lina::Table t("latency vs input width M (symbol slots)");
    t.set_header({"M", "TDM symbols", "WDM-8 symbols", "speedup"});
    for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
      const lina::CMat xm = lina::random_real(8, m, rng, -0.5, 0.5);
      core::GemmConfig tdm = base_config();
      core::GemmCore g1(tdm);
      g1.set_weights(w);
      (void)g1.multiply(xm);
      const auto s1 = g1.last_stats().symbols;

      core::GemmConfig wdm = base_config();
      wdm.wdm_channels = 8;
      core::GemmCore g8(wdm);
      g8.set_weights(w);
      (void)g8.multiply(xm);
      const auto s8 = g8.last_stats().symbols;
      t.add_row({lina::Table::num(double(m)), lina::Table::num(double(s1)),
                 lina::Table::num(double(s8)),
                 lina::Table::num(double(s1) / double(s8), 2)});
    }
    bench::show(t);
  }
  return 0;
}
