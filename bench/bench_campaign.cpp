// Fault-campaign throughput benchmark: per-trial setup cost, checkpoint
// ladders, trial sharding across threads, and the supervised worker-pool
// orchestrator. PR 3 left e7-style campaigns floored by per-trial System
// construction (DRAM allocation + SVD/Clements weight programming); the
// snapshot/restore path stages the platform once and restores it per
// trial (~a DRAM memcpy), FaultCampaign::run_trials shards the restored
// trials across threads, and the checkpoint ladder + diff-based restore
// reuse the fault-free golden prefix so a trial injecting at cycle c no
// longer re-simulates [0, c) from scratch. Process fan-out goes through
// CampaignOrchestrator: shards stream to forked workers over pipes (no
// temp files), lost workers are retried with backoff, and every
// accelerated path (ladder, threads, worker pool, the multi-axis sweep)
// is verified bit-identical to the serial oracle before any number is
// reported.
//
// Modes:
//   (default)            full benchmark; emits BENCH_campaign.json
//   --campaign-worker    worker body: one CampaignShard on stdin (to
//                        EOF), heartbeat/progress frames + the final
//                        histogram frame on stdout (campaign_io framing)
//   --campaign-worker --chaos=crash|hang|corrupt
//                        sabotaged worker for supervision drills: raise
//                        SIGKILL mid-shard / hang past the heartbeat
//                        deadline / emit a truncated histogram
//   --orchestrator-smoke CI job: 4-worker multi-axis sweep with one
//                        deliberately crashed worker attempt; asserts
//                        the merged histograms match the serial run
//                        bit-for-bit and writes BENCH_campaign.json
//
// Standalone (chrono-based); emits BENCH_campaign.json for CI artifacts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/campaign_io.hpp"
#include "sysim/campaign_orchestrator.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

#if defined(__unix__)
#include <csignal>
#include <unistd.h>
#endif

namespace {

using namespace aspen;
using namespace aspen::sys;
using Clock = std::chrono::steady_clock;

std::vector<bench::BenchRow> rows;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

void push_row(const std::string& name, double value, const char* unit,
              int size = 8) {
  std::printf("%-44s %12.1f %s\n", name.c_str(), value, unit);
  rows.push_back({name, value, size, unit});
}

/// The e7 workload every process builds, parameterized by the sweep cell:
/// the shipped snapshot is only adoptable because coordinator and worker
/// construct byte-identical platforms from the same SweepPoint.
struct Workload {
  SystemConfig base;
  GemmWorkload wl;
  std::vector<std::int16_t> a, x;
  std::vector<std::uint32_t> program;
  static constexpr std::uint64_t kMaxCycles = 500000;

  explicit Workload(const SweepPoint& p = {}) {
    base.accel.gemm.mvm.ports = 8;
    base.accel.max_cols = 64;
    base.dram_size = 1u << 18;  // the workload fits in 256 KiB
    base.accel.gemm.mvm.weights = p.pcm_weights
                                      ? core::WeightTechnology::kPcm
                                      : core::WeightTechnology::kThermoOptic;
    base.accel.gemm.mvm.pcm_drift_time_s = p.pcm_drift_time_s;
    base.accel.gemm.mvm.detector.temperature_k = p.temperature_k;
    base.accel.gemm.mvm.adc.bits = p.adc_bits;
    wl.n = 8;
    wl.m = 8;
    a = random_fixed(wl.n * wl.n, 41);
    x = random_fixed(wl.n * wl.m, 42);
    program = build_gemm_offload(wl, base, OffloadPath::kMmrInterrupt);
  }

  [[nodiscard]] FaultCampaign::SystemFactory factory() const {
    return [this]() {
      auto system = std::make_unique<System>(base);
      stage_gemm_data(*system, wl, a, x);
      system->load_program(program);
      return system;
    };
  }
  [[nodiscard]] FaultCampaign::OutputReader reader() const {
    return [this](System& s) {
      const auto y = read_gemm_result(s, wl);
      std::vector<std::uint8_t> bytes(y.size() * 2);
      std::memcpy(bytes.data(), y.data(), bytes.size());
      return bytes;
    };
  }
};

/// Worker-side half of the sweep contract: rebuild the platform for the
/// shard's cell. The shared_ptr keeps the Workload alive inside the
/// returned factory.
PointFactory point_factory() {
  return [](const SweepPoint& p) -> FaultCampaign::SystemFactory {
    auto w = std::make_shared<Workload>(p);
    return [w]() {
      auto system = std::make_unique<System>(w->base);
      stage_gemm_data(*system, w->wl, w->a, w->x);
      system->load_program(w->program);
      return system;
    };
  };
}

/// The PR 3 trial: construct the full system, run, classify — using the
/// campaign's own injection/classification logic so this baseline can
/// never drift from what FaultCampaign measures.
Outcome rebuild_trial(const FaultCampaign::SystemFactory& factory,
                      const FaultCampaign::OutputReader& read_output,
                      const std::vector<std::uint8_t>& golden,
                      std::uint64_t max_cycles, const FaultSpec& spec) {
  auto system = factory();
  system->run_until(std::min(spec.cycle, max_cycles));
  FaultCampaign::inject(*system, spec);
  system->run_until(max_cycles);
  return FaultCampaign::classify(*system, read_output, golden);
}

bool same_hist(const CampaignResult& a, const CampaignResult& b) {
  return a.counts == b.counts && a.total == b.total;
}

std::string point_label(const SweepPoint& p) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "c%u[%s/%s d=%gs T=%gK b=%d]", p.cell,
                to_string(p.target).c_str(), to_string(p.model).c_str(),
                p.pcm_drift_time_s, p.temperature_k, p.adc_bits);
  return buf;
}

#if defined(__unix__)

/// Sabotaged worker bodies for supervision drills. Each reads the shard
/// and emits one honest heartbeat first, so the orchestrator sees a
/// live worker before the fault lands — the realistic failure shape.
int run_chaos_worker(const std::string& mode) {
  std::signal(SIGPIPE, SIG_IGN);
  const CampaignShard shard = deserialize_shard(io::read_all(0));
  (void)io::write_frame(
      1, serialize_progress({shard.seq, 0, shard.specs.size()}));
  if (mode == "crash") std::raise(SIGKILL);  // worker lost mid-shard
  if (mode == "hang")
    for (;;) ::pause();  // heartbeat deadline must reap this
  if (mode == "corrupt") {
    // A truncated histogram payload: framing is intact, the body is not.
    std::vector<std::uint8_t> bad = serialize_histogram({});
    bad.resize(bad.size() / 2);
    (void)io::write_frame(1, bad);
    return 0;
  }
  std::fprintf(stderr, "bench_campaign: unknown chaos mode '%s'\n",
               mode.c_str());
  return 2;
}

std::function<void(const std::string&)> stderr_log() {
  return [](const std::string& m) {
    std::fprintf(stderr, "[orchestrator] %s\n", m.c_str());
  };
}

/// The CI smoke sweep: small multi-axis grid, 4 workers, one attempt
/// deliberately crashed. Returns false if any cell diverges from the
/// serial oracle or the crash was not retried.
bool run_sweep(const char* exe, unsigned max_workers, bool chaos_crash,
               const SweepAxes& axes, const SweepRunConfig& rc) {
  SweepGrid grid(axes, point_factory(), Workload{}.reader(),
                 Workload::kMaxCycles);

  const auto s0 = Clock::now();
  const std::vector<SweepCell> serial = grid.run_serial(rc);
  const double serial_s =
      std::chrono::duration<double>(Clock::now() - s0).count();

  OrchestratorConfig oc;
  oc.max_workers = max_workers;
  oc.max_attempts = 3;
  oc.heartbeat_timeout_ms = 120'000;  // hang detector, not a pace car
  oc.worker_argv = {exe, "--campaign-worker"};
  if (chaos_crash)
    oc.worker_command = [exe](std::uint64_t seq, unsigned attempt) {
      std::vector<std::string> argv = {exe, "--campaign-worker"};
      if (seq == 0 && attempt == 0) argv.push_back("--chaos=crash");
      return argv;
    };
  oc.log = stderr_log();

  CampaignOrchestrator::Stats stats;
  const auto t0 = Clock::now();
  const std::vector<SweepCell> swept = grid.run(rc, oc, &stats);
  const double swept_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  bool ok = true;
  std::uint64_t total_trials = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const SweepCell& cell = swept[i];
    total_trials += static_cast<std::uint64_t>(cell.hist.total);
    if (!same_hist(cell.hist, serial[i].hist)) {
      std::fprintf(stderr,
                   "bench_campaign: sweep %s diverged from the serial "
                   "oracle\n",
                   point_label(cell.point).c_str());
      ok = false;
    }
    const std::string label = "sweep_" + point_label(cell.point);
    const auto count = [&](Outcome o) {
      const auto it = cell.hist.counts.find(o);
      return it == cell.hist.counts.end() ? 0 : it->second;
    };
    push_row(label + " masked", count(Outcome::kMasked), "trials",
             static_cast<int>(cell.point.cell));
    push_row(label + " sdc", count(Outcome::kSdc), "trials",
             static_cast<int>(cell.point.cell));
    push_row(label + " due", count(Outcome::kDueTrap) + count(Outcome::kDueHang),
             "trials", static_cast<int>(cell.point.cell));
  }
  if (chaos_crash && stats.retries == 0) {
    std::fprintf(stderr,
                 "bench_campaign: crashed worker was never retried\n");
    ok = false;
  }
  push_row("sweep_orchestrated",
           static_cast<double>(total_trials) / swept_s, "trials/s");
  push_row("sweep_serial_oracle",
           static_cast<double>(total_trials) / serial_s, "trials/s");
  push_row("sweep_worker_launches", stats.launches, "procs");
  push_row("sweep_worker_retries", stats.retries, "procs");
  push_row("sweep_serial_fallbacks", stats.serial_fallbacks, "shards");
  std::printf("sweep: %zu cells, %llu trials, %u launches, %u retries\n",
              swept.size(), static_cast<unsigned long long>(total_trials),
              stats.launches, stats.retries);
  return ok;
}

int run_orchestrator_smoke(const char* exe) {
  bench::header(
      "BENCH campaign --orchestrator-smoke — supervised worker pool drill",
      "4-worker multi-axis sweep with one deliberately crashed worker; "
      "the retry path must reproduce the serial histograms bit-for-bit");
  SweepAxes axes;
  axes.faults = {{FaultTarget::kCpuRegfile, FaultModel::kTransientFlip},
                 {FaultTarget::kAccelPhase, FaultModel::kTransientFlip}};
  axes.adc_bits = {8, 6};
  SweepRunConfig rc;
  rc.trials_per_cell = 8;
  rc.shards_per_cell = 2;
  const bool ok = run_sweep(exe, 4, /*chaos_crash=*/true, axes, rc);
  bench::json_report("BENCH_campaign.json", rows);
  std::printf("\nwrote BENCH_campaign.json (%zu rows)\n", rows.size());
  return ok ? 0 : 1;
}

#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--campaign-worker") == 0) {
#if defined(__unix__)
    try {
      if (argc > 2 && std::strncmp(argv[2], "--chaos=", 8) == 0)
        return run_chaos_worker(argv[2] + 8);
      return campaign_worker_main(0, 1, point_factory(), Workload{}.reader());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_campaign worker: %s\n", e.what());
      return 1;
    }
#else
    return 1;
#endif
  }
#if defined(__unix__)
  if (argc > 1 && std::strcmp(argv[1], "--orchestrator-smoke") == 0)
    return run_orchestrator_smoke(argv[0]);
#endif

  bench::header(
      "BENCH campaign — checkpoint ladder + supervised worker-pool trials",
      "Sec.5 reliability campaigns need thousands of trials; this tracks "
      "per-trial setup (construct vs restore vs diff-restore), golden-"
      "prefix reuse via the checkpoint ladder, and trials/sec scaling "
      "across threads and a supervised worker pool, with every "
      "accelerated path's verdicts asserted bit-identical to the serial "
      "oracle");

  const Workload w;
  const FaultCampaign::SystemFactory factory = w.factory();
  const FaultCampaign::OutputReader read_y = w.reader();
  constexpr std::uint64_t kMaxCycles = Workload::kMaxCycles;
  constexpr unsigned kLadderRungs = 16;

  FaultCampaign campaign(factory, read_y, kMaxCycles);
  lina::Rng rng(77);
  const int trials = bench::samples(160, 12);
  // A mixed spec batch: register + DRAM + photonic-phase faults, the
  // spread an e7 campaign sweeps.
  std::vector<FaultSpec> specs;
  for (const FaultTarget t : {FaultTarget::kCpuRegfile,
                              FaultTarget::kDramData,
                              FaultTarget::kAccelPhase}) {
    const auto part =
        campaign.sample_specs(t, FaultModel::kTransientFlip, trials / 3, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }

  // -- Per-trial setup cost in isolation --------------------------------
  {
    const int reps = bench::samples(40, 4);
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      auto system = factory();
      (void)system->now();
    }
    const double construct_us =
        std::chrono::duration<double>(Clock::now() - t0).count() / reps * 1e6;
    push_row("trial_setup_construct", construct_us, "us");

    auto system = factory();
    const System::SystemSnapshot snap = system->snapshot();
    const auto t1 = Clock::now();
    for (int i = 0; i < reps; ++i) system->restore(snap);
    const double restore_us =
        std::chrono::duration<double>(Clock::now() - t1).count() / reps * 1e6;
    push_row("trial_setup_restore", restore_us, "us");

    // Diff-based restore on a near-identical image — the checkpoint-
    // ladder steady state, where consecutive trials restore against the
    // same rung and only the trial's own footprint differs.
    const auto t2 = Clock::now();
    for (int i = 0; i < reps; ++i) system->restore_fast(snap);
    const double diff_us =
        std::chrono::duration<double>(Clock::now() - t2).count() / reps * 1e6;
    push_row("trial_setup_restore_diff", diff_us, "us");
    push_row("trial_setup_speedup", construct_us / restore_us, "x");
  }

  // -- Campaign throughput ----------------------------------------------
  const auto golden = campaign.golden();
  const auto timed = [&](const char* name, const auto& fn) {
    const auto t0 = Clock::now();
    std::vector<Outcome> out = fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const double tps = static_cast<double>(out.size()) / s;
    push_row(name, tps, "trials/s");
    return std::make_pair(out, tps);
  };

  const auto [rebuilt, rebuild_tps] = timed("campaign_rebuild_serial", [&] {
    std::vector<Outcome> out;
    out.reserve(specs.size());
    for (const FaultSpec& spec : specs)
      out.push_back(rebuild_trial(factory, read_y, golden, kMaxCycles, spec));
    return out;
  });
  const auto [restored, restore_tps] = timed("campaign_restore_serial", [&] {
    return campaign.run_trials(specs, 1);
  });
  if (rebuilt != restored) {
    std::fprintf(stderr,
                 "bench_campaign: restore path diverged from rebuild path\n");
    return 1;
  }

  double best_parallel_tps = restore_tps;
  for (const unsigned threads : {2u, 4u, 8u}) {
    char name[48];
    std::snprintf(name, sizeof name, "campaign_restore_t%u", threads);
    const auto [par, par_tps] =
        timed(name, [&] { return campaign.run_trials(specs, threads); });
    if (par != restored) {
      std::fprintf(stderr,
                   "bench_campaign: %u-thread verdicts diverged from serial\n",
                   threads);
      return 1;
    }
    best_parallel_tps = std::max(best_parallel_tps, par_tps);
  }

  // -- Checkpoint ladder: golden-prefix reuse ---------------------------
  campaign.build_ladder(kLadderRungs);
  const auto [laddered, ladder_tps] = timed("campaign_ladder", [&] {
    return campaign.run_trials(specs, 1);
  });
  if (laddered != restored) {
    std::fprintf(stderr,
                 "bench_campaign: ladder verdicts diverged from rung-0\n");
    return 1;
  }
  push_row("campaign_ladder_speedup", ladder_tps / restore_tps, "x");

#if defined(__unix__)
  // -- Supervised worker pool (pipes, no temp files) --------------------
  {
    const std::vector<CampaignShard> shards =
        plan_shards(campaign, specs, 2, kLadderRungs);
    std::vector<ShardTask> tasks;
    for (const CampaignShard& shard : shards) {
      ShardTask t;
      t.seq = shard.seq;
      t.trials = shard.specs.size();
      t.payload = serialize_shard(shard);
      tasks.push_back(std::move(t));
    }
    OrchestratorConfig oc;
    oc.max_workers = 2;
    oc.worker_argv = {argv[0], "--campaign-worker"};
    oc.heartbeat_timeout_ms = 120'000;
    CampaignOrchestrator orch(oc, [&](const CampaignShard& shard) {
      return histogram_of(campaign.run_trials(shard.specs, 1));
    });
    const auto t0 = Clock::now();
    const std::vector<ShardOutcome> outs = orch.run(tasks);
    const double fanout_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::vector<CampaignResult> parts;
    for (const ShardOutcome& o : outs) {
      if (!o.completed) {
        std::fprintf(stderr, "bench_campaign: shard %llu never completed\n",
                     static_cast<unsigned long long>(o.seq));
        return 1;
      }
      parts.push_back(o.hist);
    }
    if (!same_hist(merge_histograms(parts), histogram_of(restored))) {
      std::fprintf(stderr,
                   "bench_campaign: merged worker-pool histogram diverged "
                   "from serial\n");
      return 1;
    }
    push_row("campaign_orchestrated_2w",
             static_cast<double>(specs.size()) / fanout_s, "trials/s");
  }

  // -- Multi-axis sweep through the same pool ---------------------------
  {
    SweepAxes axes;
    axes.faults = {{FaultTarget::kCpuRegfile, FaultModel::kTransientFlip},
                   {FaultTarget::kAccelPhase, FaultModel::kTransientFlip}};
    axes.pcm_drift_times_s = bench::smoke_mode()
                                 ? std::vector<double>{0.0}
                                 : std::vector<double>{0.0, 3600.0};
    axes.adc_bits =
        bench::smoke_mode() ? std::vector<int>{8} : std::vector<int>{8, 6};
    SweepRunConfig rc;
    rc.trials_per_cell = bench::samples(24, 6);
    rc.shards_per_cell = 2;
    if (!run_sweep(argv[0], 4, /*chaos_crash=*/false, axes, rc)) return 1;
  }
#endif

  push_row("campaign_restore_speedup", restore_tps / rebuild_tps, "x");
  push_row("campaign_t8_vs_rebuild_speedup", best_parallel_tps / rebuild_tps,
           "x");
  std::printf("(host threads available: %u)\n",
              std::thread::hardware_concurrency());

  bench::json_report("BENCH_campaign.json", rows);
  std::printf("\nwrote BENCH_campaign.json (%zu rows)\n", rows.size());
  return 0;
}
