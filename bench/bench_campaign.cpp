// Fault-campaign throughput benchmark: per-trial setup cost and trial
// sharding across a worker pool. PR 3 left e7-style campaigns floored by
// per-trial System construction (DRAM allocation + SVD/Clements weight
// programming); the snapshot/restore path stages the platform once and
// restores it per trial (~a DRAM memcpy), and FaultCampaign::run_trials
// shards the restored trials across threads. Serial and parallel runs
// are verified bit-identical here (per-trial verdicts, not just the
// distribution) before any number is reported.
//
// Standalone (chrono-based); emits BENCH_campaign.json for CI artifacts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;
using Clock = std::chrono::steady_clock;

std::vector<bench::BenchRow> rows;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

void push_row(const char* name, double value, const char* unit) {
  std::printf("%-36s %12.1f %s\n", name, value, unit);
  rows.push_back({name, value, 8, unit});
}

/// The PR 3 trial: construct the full system, run, classify — using the
/// campaign's own injection/classification logic so this baseline can
/// never drift from what FaultCampaign measures.
Outcome rebuild_trial(const FaultCampaign::SystemFactory& factory,
                      const FaultCampaign::OutputReader& read_output,
                      const std::vector<std::uint8_t>& golden,
                      std::uint64_t max_cycles, const FaultSpec& spec) {
  auto system = factory();
  system->run_until(std::min(spec.cycle, max_cycles));
  FaultCampaign::inject(*system, spec);
  system->run_until(max_cycles);
  return FaultCampaign::classify(*system, read_output, golden);
}

}  // namespace

int main() {
  bench::header(
      "BENCH campaign — snapshot/restore + thread-parallel fault trials",
      "Sec.5 reliability campaigns need thousands of trials; this tracks "
      "per-trial setup (construct vs restore) and trials/sec scaling "
      "across a worker pool, with serial==parallel verdicts asserted");

  SystemConfig base;
  base.accel.gemm.mvm.ports = 8;
  base.accel.max_cols = 64;
  base.dram_size = 1u << 18;  // the workload fits in 256 KiB
  base.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
  GemmWorkload wl;
  wl.n = 8;
  wl.m = 8;
  const auto a = random_fixed(wl.n * wl.n, 41);
  const auto x = random_fixed(wl.n * wl.m, 42);
  const auto program = build_gemm_offload(wl, base, OffloadPath::kMmrInterrupt);
  constexpr std::uint64_t kMaxCycles = 500000;

  const FaultCampaign::SystemFactory factory = [&]() {
    auto system = std::make_unique<System>(base);
    stage_gemm_data(*system, wl, a, x);
    system->load_program(program);
    return system;
  };
  const FaultCampaign::OutputReader read_y = [&](System& s) {
    const auto y = read_gemm_result(s, wl);
    std::vector<std::uint8_t> bytes(y.size() * 2);
    std::memcpy(bytes.data(), y.data(), bytes.size());
    return bytes;
  };

  FaultCampaign campaign(factory, read_y, kMaxCycles);
  lina::Rng rng(77);
  const int trials = bench::samples(160, 12);
  // A mixed spec batch: register + DRAM + photonic-phase faults, the
  // spread an e7 campaign sweeps.
  std::vector<FaultSpec> specs;
  for (const FaultTarget t : {FaultTarget::kCpuRegfile,
                              FaultTarget::kDramData,
                              FaultTarget::kAccelPhase}) {
    const auto part =
        campaign.sample_specs(t, FaultModel::kTransientFlip, trials / 3, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }

  // -- Per-trial setup cost in isolation --------------------------------
  {
    const int reps = bench::samples(40, 4);
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      auto system = factory();
      (void)system->now();
    }
    const double construct_us =
        std::chrono::duration<double>(Clock::now() - t0).count() / reps * 1e6;
    push_row("trial_setup_construct", construct_us, "us");

    auto system = factory();
    const System::SystemSnapshot snap = system->snapshot();
    const auto t1 = Clock::now();
    for (int i = 0; i < reps; ++i) system->restore(snap);
    const double restore_us =
        std::chrono::duration<double>(Clock::now() - t1).count() / reps * 1e6;
    push_row("trial_setup_restore", restore_us, "us");
    push_row("trial_setup_speedup", construct_us / restore_us, "x");
  }

  // -- Campaign throughput ----------------------------------------------
  const auto golden = campaign.golden();
  const auto timed = [&](const char* name, const auto& fn) {
    const auto t0 = Clock::now();
    std::vector<Outcome> out = fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const double tps = static_cast<double>(out.size()) / s;
    push_row(name, tps, "trials/s");
    return std::make_pair(out, tps);
  };

  const auto [rebuilt, rebuild_tps] = timed("campaign_rebuild_serial", [&] {
    std::vector<Outcome> out;
    out.reserve(specs.size());
    for (const FaultSpec& spec : specs)
      out.push_back(rebuild_trial(factory, read_y, golden, kMaxCycles, spec));
    return out;
  });
  const auto [restored, restore_tps] = timed("campaign_restore_serial", [&] {
    return campaign.run_trials(specs, 1);
  });
  if (rebuilt != restored) {
    std::fprintf(stderr,
                 "bench_campaign: restore path diverged from rebuild path\n");
    return 1;
  }

  double best_parallel_tps = restore_tps;
  for (const unsigned threads : {2u, 4u, 8u}) {
    char name[48];
    std::snprintf(name, sizeof name, "campaign_restore_t%u", threads);
    const auto [par, par_tps] =
        timed(name, [&] { return campaign.run_trials(specs, threads); });
    if (par != restored) {
      std::fprintf(stderr,
                   "bench_campaign: %u-thread verdicts diverged from serial\n",
                   threads);
      return 1;
    }
    best_parallel_tps = std::max(best_parallel_tps, par_tps);
  }

  push_row("campaign_restore_speedup", restore_tps / rebuild_tps, "x");
  push_row("campaign_t8_vs_rebuild_speedup", best_parallel_tps / rebuild_tps,
           "x");
  std::printf("(host threads available: %u)\n",
              std::thread::hardware_concurrency());

  bench::json_report("BENCH_campaign.json", rows);
  std::printf("\nwrote BENCH_campaign.json (%zu rows)\n", rows.size());
  return 0;
}
