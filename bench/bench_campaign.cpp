// Fault-campaign throughput benchmark: per-trial setup cost, checkpoint
// ladders and trial sharding across threads and processes. PR 3 left
// e7-style campaigns floored by per-trial System construction (DRAM
// allocation + SVD/Clements weight programming); the snapshot/restore
// path stages the platform once and restores it per trial (~a DRAM
// memcpy), FaultCampaign::run_trials shards the restored trials across
// threads, and the checkpoint ladder + diff-based restore reuse the
// fault-free golden prefix so a trial injecting at cycle c no longer
// re-simulates [0, c) from scratch. Every accelerated path (ladder,
// threads, worker processes) is verified bit-identical to the serial
// restore-from-cycle-0 oracle before any number is reported.
//
// Invoked with --campaign-worker the binary becomes a campaign worker:
// it reads one binary CampaignShard (see campaign_io.hpp) from stdin,
// rebuilds the platform from the identical compiled-in factory, adopts
// the coordinator's staged snapshot + golden reference, executes the
// spec shard and writes the verdict histogram to stdout. The default
// mode exercises that protocol end to end with a 2-process fan-out and
// asserts the merged histogram equals the serial one.
//
// Standalone (chrono-based); emits BENCH_campaign.json for CI artifacts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/campaign_io.hpp"
#include "sysim/fault.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;
using Clock = std::chrono::steady_clock;

std::vector<bench::BenchRow> rows;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

void push_row(const char* name, double value, const char* unit) {
  std::printf("%-36s %12.1f %s\n", name, value, unit);
  rows.push_back({name, value, 8, unit});
}

/// The e7 workload both the coordinator and worker processes build: the
/// shipped snapshot is only adoptable because every process constructs a
/// byte-identical platform from this one definition.
struct Workload {
  SystemConfig base;
  GemmWorkload wl;
  std::vector<std::int16_t> a, x;
  std::vector<std::uint32_t> program;
  static constexpr std::uint64_t kMaxCycles = 500000;

  Workload() {
    base.accel.gemm.mvm.ports = 8;
    base.accel.max_cols = 64;
    base.dram_size = 1u << 18;  // the workload fits in 256 KiB
    base.accel.gemm.mvm.weights = core::WeightTechnology::kThermoOptic;
    wl.n = 8;
    wl.m = 8;
    a = random_fixed(wl.n * wl.n, 41);
    x = random_fixed(wl.n * wl.m, 42);
    program = build_gemm_offload(wl, base, OffloadPath::kMmrInterrupt);
  }

  [[nodiscard]] FaultCampaign::SystemFactory factory() const {
    return [this]() {
      auto system = std::make_unique<System>(base);
      stage_gemm_data(*system, wl, a, x);
      system->load_program(program);
      return system;
    };
  }
  [[nodiscard]] FaultCampaign::OutputReader reader() const {
    return [this](System& s) {
      const auto y = read_gemm_result(s, wl);
      std::vector<std::uint8_t> bytes(y.size() * 2);
      std::memcpy(bytes.data(), y.data(), bytes.size());
      return bytes;
    };
  }
};

/// The PR 3 trial: construct the full system, run, classify — using the
/// campaign's own injection/classification logic so this baseline can
/// never drift from what FaultCampaign measures.
Outcome rebuild_trial(const FaultCampaign::SystemFactory& factory,
                      const FaultCampaign::OutputReader& read_output,
                      const std::vector<std::uint8_t>& golden,
                      std::uint64_t max_cycles, const FaultSpec& spec) {
  auto system = factory();
  system->run_until(std::min(spec.cycle, max_cycles));
  FaultCampaign::inject(*system, spec);
  system->run_until(max_cycles);
  return FaultCampaign::classify(*system, read_output, golden);
}

CampaignResult to_histogram(const std::vector<Outcome>& outcomes) {
  CampaignResult r;
  for (const Outcome o : outcomes) ++r.counts[o];
  r.total = static_cast<int>(outcomes.size());
  return r;
}

bool write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<std::uint8_t> read_stream(std::FILE* f) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  return bytes;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("bench_campaign: cannot open " + path);
  std::vector<std::uint8_t> bytes = read_stream(f);
  std::fclose(f);
  return bytes;
}

/// Worker-process entry point: stdin carries one CampaignShard, stdout
/// carries the verdict histogram. All diagnostics go to stderr so the
/// binary payload stays clean.
int run_worker() {
  try {
    const CampaignShard shard = deserialize_shard(read_stream(stdin));
    const Workload w;
    FaultCampaign campaign(w.factory(), w.reader(), shard.max_cycles);
    campaign.adopt_staged(shard.staged, shard.golden, shard.golden_cycles);
    if (shard.ladder_rungs > 1) campaign.build_ladder(shard.ladder_rungs);
    const std::vector<Outcome> outcomes = campaign.run_trials(shard.specs, 1);
    const std::vector<std::uint8_t> payload =
        serialize_histogram(to_histogram(outcomes));
    if (std::fwrite(payload.data(), 1, payload.size(), stdout) !=
        payload.size()) {
      std::fprintf(stderr, "bench_campaign worker: short write on stdout\n");
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_campaign worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--campaign-worker") == 0)
    return run_worker();

  bench::header(
      "BENCH campaign — checkpoint ladder + multi-process fault trials",
      "Sec.5 reliability campaigns need thousands of trials; this tracks "
      "per-trial setup (construct vs restore vs diff-restore), golden-"
      "prefix reuse via the checkpoint ladder, and trials/sec scaling "
      "across threads and worker processes, with every accelerated "
      "path's verdicts asserted bit-identical to the serial oracle");

  const Workload w;
  const FaultCampaign::SystemFactory factory = w.factory();
  const FaultCampaign::OutputReader read_y = w.reader();
  constexpr std::uint64_t kMaxCycles = Workload::kMaxCycles;
  constexpr unsigned kLadderRungs = 16;

  FaultCampaign campaign(factory, read_y, kMaxCycles);
  lina::Rng rng(77);
  const int trials = bench::samples(160, 12);
  // A mixed spec batch: register + DRAM + photonic-phase faults, the
  // spread an e7 campaign sweeps.
  std::vector<FaultSpec> specs;
  for (const FaultTarget t : {FaultTarget::kCpuRegfile,
                              FaultTarget::kDramData,
                              FaultTarget::kAccelPhase}) {
    const auto part =
        campaign.sample_specs(t, FaultModel::kTransientFlip, trials / 3, rng);
    specs.insert(specs.end(), part.begin(), part.end());
  }

  // -- Per-trial setup cost in isolation --------------------------------
  {
    const int reps = bench::samples(40, 4);
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      auto system = factory();
      (void)system->now();
    }
    const double construct_us =
        std::chrono::duration<double>(Clock::now() - t0).count() / reps * 1e6;
    push_row("trial_setup_construct", construct_us, "us");

    auto system = factory();
    const System::SystemSnapshot snap = system->snapshot();
    const auto t1 = Clock::now();
    for (int i = 0; i < reps; ++i) system->restore(snap);
    const double restore_us =
        std::chrono::duration<double>(Clock::now() - t1).count() / reps * 1e6;
    push_row("trial_setup_restore", restore_us, "us");

    // Diff-based restore on a near-identical image — the checkpoint-
    // ladder steady state, where consecutive trials restore against the
    // same rung and only the trial's own footprint differs.
    const auto t2 = Clock::now();
    for (int i = 0; i < reps; ++i) system->restore_fast(snap);
    const double diff_us =
        std::chrono::duration<double>(Clock::now() - t2).count() / reps * 1e6;
    push_row("trial_setup_restore_diff", diff_us, "us");
    push_row("trial_setup_speedup", construct_us / restore_us, "x");
  }

  // -- Campaign throughput ----------------------------------------------
  const auto golden = campaign.golden();
  const auto timed = [&](const char* name, const auto& fn) {
    const auto t0 = Clock::now();
    std::vector<Outcome> out = fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const double tps = static_cast<double>(out.size()) / s;
    push_row(name, tps, "trials/s");
    return std::make_pair(out, tps);
  };

  const auto [rebuilt, rebuild_tps] = timed("campaign_rebuild_serial", [&] {
    std::vector<Outcome> out;
    out.reserve(specs.size());
    for (const FaultSpec& spec : specs)
      out.push_back(rebuild_trial(factory, read_y, golden, kMaxCycles, spec));
    return out;
  });
  const auto [restored, restore_tps] = timed("campaign_restore_serial", [&] {
    return campaign.run_trials(specs, 1);
  });
  if (rebuilt != restored) {
    std::fprintf(stderr,
                 "bench_campaign: restore path diverged from rebuild path\n");
    return 1;
  }

  double best_parallel_tps = restore_tps;
  for (const unsigned threads : {2u, 4u, 8u}) {
    char name[48];
    std::snprintf(name, sizeof name, "campaign_restore_t%u", threads);
    const auto [par, par_tps] =
        timed(name, [&] { return campaign.run_trials(specs, threads); });
    if (par != restored) {
      std::fprintf(stderr,
                   "bench_campaign: %u-thread verdicts diverged from serial\n",
                   threads);
      return 1;
    }
    best_parallel_tps = std::max(best_parallel_tps, par_tps);
  }

  // -- Checkpoint ladder: golden-prefix reuse ---------------------------
  campaign.build_ladder(kLadderRungs);
  const auto [laddered, ladder_tps] = timed("campaign_ladder", [&] {
    return campaign.run_trials(specs, 1);
  });
  if (laddered != restored) {
    std::fprintf(stderr,
                 "bench_campaign: ladder verdicts diverged from rung-0\n");
    return 1;
  }
  push_row("campaign_ladder_speedup", ladder_tps / restore_tps, "x");

  // -- Multi-process fan-out (2 workers over the campaign wire format) --
#if defined(__unix__)
  {
    auto staged = factory();
    CampaignShard shard;
    shard.staged = staged->snapshot();
    shard.golden = golden;
    shard.golden_cycles = campaign.golden_cycles();
    shard.max_cycles = kMaxCycles;
    shard.ladder_rungs = kLadderRungs;
    const std::size_t half = specs.size() / 2;
    shard.specs.assign(specs.begin(), specs.begin() + half);
    const std::vector<std::uint8_t> in0 = serialize_shard(shard);
    shard.specs.assign(specs.begin() + half, specs.end());
    const std::vector<std::uint8_t> in1 = serialize_shard(shard);

    const std::string exe = argv[0];
    const std::string f0 = "bench_campaign_shard0.bin";
    const std::string f1 = "bench_campaign_shard1.bin";
    const std::string o0 = "bench_campaign_hist0.bin";
    const std::string o1 = "bench_campaign_hist1.bin";
    if (!write_file(f0, in0) || !write_file(f1, in1)) {
      std::fprintf(stderr, "bench_campaign: cannot write shard files\n");
      return 1;
    }
    const std::string cmd = "\"" + exe + "\" --campaign-worker < " + f0 +
                            " > " + o0 + " & p1=$!; \"" + exe +
                            "\" --campaign-worker < " + f1 + " > " + o1 +
                            " & p2=$!; wait $p1 && wait $p2";
    const auto t0 = Clock::now();
    const int status = std::system(cmd.c_str());
    const double fanout_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (status != 0) {
      std::fprintf(stderr, "bench_campaign: worker processes failed (%d)\n",
                   status);
      return 1;
    }
    CampaignResult merged;
    try {
      merged = merge_histograms({deserialize_histogram(read_file(o0)),
                                 deserialize_histogram(read_file(o1))});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_campaign: %s\n", e.what());
      return 1;
    }
    const CampaignResult serial = to_histogram(restored);
    if (merged.counts != serial.counts || merged.total != serial.total) {
      std::fprintf(stderr,
                   "bench_campaign: merged 2-process histogram diverged from "
                   "serial\n");
      return 1;
    }
    push_row("campaign_2proc",
             static_cast<double>(specs.size()) / fanout_s, "trials/s");
    for (const std::string& p : {f0, f1, o0, o1}) std::remove(p.c_str());
  }
#endif

  push_row("campaign_restore_speedup", restore_tps / rebuild_tps, "x");
  push_row("campaign_t8_vs_rebuild_speedup", best_parallel_tps / rebuild_tps,
           "x");
  std::printf("(host threads available: %u)\n",
              std::thread::hardware_concurrency());

  bench::json_report("BENCH_campaign.json", rows);
  std::printf("\nwrote BENCH_campaign.json (%zu rows)\n", rows.size());
  return 0;
}
