// E4 — The non-volatility energy argument.
// Paper Section 3: "Given that this phase-shift remains constant for a
// set weight matrix (that is, during inference), a non-volatile approach
// would be ideal to remove this constant energy consumption."
//
// Series 1: energy per inference vs weight reuse (inferences between
//           reprogrammings): volatile thermo-optic heaters pay static
//           holding power forever; PCM pays write energy once. The
//           crossover is at ~1 inference: amortization makes PCM win
//           everywhere the weights are reused.
// Series 2: static power breakdown per technology and mesh size.
#include "bench_util.hpp"
#include "core/energy_model.hpp"

int main() {
  using namespace aspen;
  bench::header("E4  non-volatile weight energy",
                "Sec.3: non-volatility removes the constant hold power of "
                "thermo-optic weights");

  core::MvmConfig cfg;
  cfg.ports = 8;

  {
    lina::Table t("energy per inference (8 MVMs each) vs weight reuse");
    t.set_header({"reuse", "thermo uJ", "pcm uJ", "ratio thermo/pcm"});
    for (double reuse : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
      const auto p = core::weight_energy_at_reuse(cfg, reuse, 8.0);
      t.add_row({lina::Table::sci(reuse, 0),
                 lina::Table::num(p.thermo_energy_j * 1e6, 4),
                 lina::Table::num(p.pcm_energy_j * 1e6, 4),
                 lina::Table::num(p.thermo_energy_j / p.pcm_energy_j, 1)});
    }
    bench::show(t);
  }

  {
    lina::Table t("static power and programming cost vs mesh size");
    t.set_header({"N", "thermo hold W", "pcm hold W", "thermo prog us",
                  "pcm prog us", "thermo prog uJ", "pcm prog uJ"});
    for (std::size_t n : {8, 16, 32, 64}) {
      core::MvmConfig c = cfg;
      c.ports = n;
      c.weights = core::WeightTechnology::kThermoOptic;
      const auto thermo = core::evaluate_accelerator(c);
      c.weights = core::WeightTechnology::kPcm;
      const auto pcm = core::evaluate_accelerator(c);
      t.add_row({lina::Table::num(double(n)),
                 lina::Table::num(thermo.weight_holding_w, 3),
                 lina::Table::num(pcm.weight_holding_w, 3),
                 lina::Table::num(thermo.program_time_s * 1e6, 2),
                 lina::Table::num(pcm.program_time_s * 1e6, 3),
                 lina::Table::num(thermo.program_energy_j * 1e6, 3),
                 lina::Table::num(pcm.program_energy_j * 1e6, 3)});
    }
    bench::show(t);
  }
  return 0;
}
