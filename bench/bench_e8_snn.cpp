// E8 — Spiking sources and bio-inspired learning.
// Paper Section 3: "Q-switched III-V on-chip lasers are explored as
// chipscale excitable spiking sources ... By leveraging the ultrafast
// response (sub-ns) and accumulation behavior of PCM-based devices ...
// the viability of photonic spiking neural networks (SNN) and
// bio-inspired learning rules such as spike-timing dependent plasticity
// (STDP) will be investigated."
//
// Series 1: Yamada laser excitability — response peak vs perturbation
//           strength (all-or-none threshold).
// Series 2: interspike interval vs drive (refractory-limited rate).
// Series 3: PCM accumulate-and-fire transfer (spikes out vs pulses in).
// Series 4: STDP window realized on PCM synapses.
// Series 5: unsupervised pattern-separation convergence.
#include "bench_util.hpp"
#include "photonics/laser.hpp"
#include "snn/network.hpp"
#include "snn/pcm_synapse.hpp"

namespace {

using namespace aspen;

/// Peak intensity after a rectangular perturbation of given strength.
double response_peak(double strength) {
  phot::YamadaNeuron n;
  for (int i = 0; i < 200; ++i) (void)n.step(strength);
  double peak = 0.0;
  for (int i = 0; i < 40000; ++i) peak = std::max(peak, n.step(0.0));
  return peak;
}

}  // namespace

int main() {
  bench::header("E8  photonic spiking neurons + STDP",
                "Sec.3: excitable Q-switched lasers, PCM accumulation, STDP");

  {
    lina::Table t("Yamada excitability: response peak vs perturbation "
                  "(all-or-none)");
    t.set_header({"injection", "peak intensity", "fires"});
    for (double inj : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}) {
      const double peak = response_peak(inj);
      t.add_row({lina::Table::sci(inj, 0), lina::Table::num(peak, 3),
                 peak > 1.0 ? "yes" : "no"});
    }
    bench::show(t);
  }

  {
    lina::Table t("pulse train under constant drive (refractory-limited)");
    t.set_header({"drive", "spikes / 1200 units", "mean ISI (units)"});
    for (double drive : {0.01, 0.02, 0.05, 0.1}) {
      phot::YamadaNeuron n;
      std::vector<double> times;
      for (int i = 0; i < 120000; ++i) {
        (void)n.step(drive);
        if (n.spiked()) times.push_back(n.time());
      }
      double isi = 0.0;
      for (std::size_t i = 1; i < times.size(); ++i)
        isi += times[i] - times[i - 1];
      if (times.size() > 1) isi /= static_cast<double>(times.size() - 1);
      t.add_row({lina::Table::num(drive, 2),
                 lina::Table::num(double(times.size())),
                 lina::Table::num(isi, 1)});
    }
    bench::show(t);
  }

  {
    lina::Table t("PCM accumulate-and-fire: output spikes vs input pulses "
                  "(threshold 0.75, step 0.1)");
    t.set_header({"input pulses", "output spikes", "pulses per spike"});
    for (int pulses : {8, 16, 32, 64}) {
      snn::PcmNeuronConfig cfg;
      cfg.cell.accumulation_step = 0.1;
      cfg.threshold_fraction = 0.75;
      cfg.refractory_s = 0.0;
      snn::PcmNeuron n(cfg);
      int spikes = 0;
      for (int k = 0; k < pulses; ++k)
        if (n.inject(1.0, (k + 1) * 10e-9)) ++spikes;
      t.add_row({lina::Table::num(double(pulses)),
                 lina::Table::num(double(spikes)),
                 spikes > 0 ? lina::Table::num(double(pulses) / spikes, 1)
                            : "-"});
    }
    bench::show(t);
  }

  {
    lina::Table t("STDP window realized on a PCM synapse (w0 = 0.5)");
    t.set_header({"dt ns (post-pre)", "ideal dW", "realized dW (64 lvl)"});
    snn::StdpConfig rule;
    for (double dt_ns : {-80.0, -40.0, -10.0, -2.0, 2.0, 10.0, 40.0, 80.0}) {
      const double ideal = snn::stdp_delta(rule, dt_ns * 1e-9);
      snn::PcmSynapse syn(phot::PcmCellConfig{}, 0.5);
      const double before = syn.weight();
      syn.update(ideal);
      t.add_row({lina::Table::num(dt_ns, 0), lina::Table::num(ideal, 4),
                 lina::Table::num(syn.weight() - before, 4)});
    }
    bench::show(t);
  }

  {
    lina::Table t("unsupervised pattern separation: selectivity vs "
                  "presentations (2 patterns, 2 neurons, WTA + homeostasis)");
    t.set_header({"presentations", "selectivity", "write energy nJ"});
    for (int blocks : {10, 30, 60, 120, 240}) {
      snn::NetworkConfig cfg;
      cfg.inputs = 8;
      cfg.outputs = 2;
      cfg.lateral_inhibition = 0.4;
      cfg.neuron.cell.accumulation_step = 0.6;
      cfg.neuron.threshold_fraction = 0.5;
      cfg.neuron.adaptation_delta = 0.25;
      cfg.neuron.adaptation_tau_s = 600e-9;
      cfg.stdp.a_plus = 0.10;
      cfg.stdp.a_minus = 0.05;
      cfg.stdp.tau_minus_s = 5e-9;
      cfg.seed = 0x77;
      snn::SpikingNetwork net(cfg);

      snn::SpikeRaster in(8);
      for (int block = 0; block < blocks; ++block) {
        const bool a = block % 2 == 0;
        for (int s = 0; s < 2; ++s) {
          const double tt = (block * 4 + s) * cfg.slot_s + 1e-12;
          for (std::size_t i = a ? 0 : 4; i < (a ? 4u : 8u); ++i)
            in[i].push_back(tt);
        }
      }
      (void)net.run(in, blocks * 4 * cfg.slot_s);
      // Selectivity: |pattern preference difference| between the outputs.
      const auto w = net.weights();
      const auto pref = [&](std::size_t o) {
        double wa = 0.0, wb = 0.0;
        for (std::size_t i = 0; i < 4; ++i) wa += w[o][i];
        for (std::size_t i = 4; i < 8; ++i) wb += w[o][i];
        return wa - wb;
      };
      t.add_row({lina::Table::num(double(blocks)),
                 lina::Table::num(std::abs(pref(0) - pref(1)), 3),
                 lina::Table::num(net.total_write_energy_j() * 1e9, 1)});
    }
    bench::show(t);
  }
  return 0;
}
