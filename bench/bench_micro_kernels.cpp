// E10 — Engineering micro-kernels (google-benchmark): the hot paths of
// the simulator itself. Useful for regression-tracking the framework and
// for sizing larger experiments.
#include <benchmark/benchmark.h>

#include "core/mvm_engine.hpp"
#include "lina/random.hpp"
#include "lina/svd.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;

void BM_HaarUnitary(benchmark::State& state) {
  lina::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(lina::haar_unitary(n, rng));
}
BENCHMARK(BM_HaarUnitary)->Arg(8)->Arg(16)->Arg(32);

void BM_Svd(benchmark::State& state) {
  lina::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat m = lina::ginibre(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lina::svd(m));
}
BENCHMARK(BM_Svd)->Arg(8)->Arg(16)->Arg(32);

void BM_ClementsDecompose(benchmark::State& state) {
  lina::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat u = lina::haar_unitary(n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(mesh::clements_decompose(u));
}
BENCHMARK(BM_ClementsDecompose)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshTransfer(benchmark::State& state) {
  lina::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pm = mesh::clements_decompose(lina::haar_unitary(n, rng));
  mesh::PhysicalMesh mesh(pm.layout, mesh::MeshErrorModel{});
  mesh.program(pm.phases);
  for (auto _ : state) benchmark::DoNotOptimize(mesh.transfer());
}
BENCHMARK(BM_MeshTransfer)->Arg(8)->Arg(16)->Arg(32);

void BM_SetPhaseTransferIncremental(benchmark::State& state) {
  // The column-factored cache's O(N^2) incremental path: nudge one phase,
  // refresh the transfer (one column rebuild + rank-one updates).
  lina::Rng rng(40);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pm = mesh::clements_decompose(lina::haar_unitary(n, rng));
  mesh::MeshErrorModel em;
  em.coupler_sigma = 0.02;
  mesh::PhysicalMesh mesh(pm.layout, em);
  mesh.program(pm.phases);
  benchmark::DoNotOptimize(mesh.transfer());
  std::size_t slot = 0;
  double bump = 1e-3;
  for (auto _ : state) {
    mesh.set_phase(slot, mesh.phase(slot) + bump);
    benchmark::DoNotOptimize(mesh.transfer());
    slot = (slot + 1) % mesh.phase_count();
    bump = -bump;
  }
}
BENCHMARK(BM_SetPhaseTransferIncremental)->Arg(8)->Arg(16)->Arg(32);

void BM_Calibrate(benchmark::State& state) {
  lina::Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat target = lina::haar_unitary(n, rng);
  mesh::MeshErrorModel em;
  em.coupler_sigma = 0.02;
  for (auto _ : state) {
    state.PauseTiming();
    mesh::PhysicalMesh mesh(mesh::clements_layout(n), em);
    const auto pm = mesh::clements_decompose(target);
    mesh.program(pm.phases);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mesh::calibrate(mesh, target));
  }
}
BENCHMARK(BM_Calibrate)
    ->Arg(6)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MvmMultiply(benchmark::State& state) {
  core::MvmConfig cfg;
  cfg.ports = static_cast<std::size_t>(state.range(0));
  core::MvmEngine engine(cfg);
  lina::Rng rng(6);
  engine.set_matrix(lina::random_real(cfg.ports, cfg.ports, rng));
  const lina::CVec x = lina::random_state(cfg.ports, rng);
  for (auto _ : state) benchmark::DoNotOptimize(engine.multiply(x));
}
BENCHMARK(BM_MvmMultiply)->Arg(8)->Arg(16);

void BM_MvmMultiplyBatch(benchmark::State& state) {
  // Whole-batch GEMM propagation vs the per-vector loop below; items
  // processed = input vectors, so throughput is directly comparable.
  core::MvmConfig cfg;
  cfg.ports = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  core::MvmEngine engine(cfg);
  lina::Rng rng(6);
  engine.set_matrix(lina::random_real(cfg.ports, cfg.ports, rng));
  lina::CMat x(cfg.ports, batch);
  for (std::size_t r = 0; r < cfg.ports; ++r)
    for (std::size_t c = 0; c < batch; ++c)
      x(r, c) = lina::cplx{rng.uniform(-1.0, 1.0), 0.0};
  for (auto _ : state) benchmark::DoNotOptimize(engine.multiply_batch(x));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MvmMultiplyBatch)->Args({8, 64})->Args({16, 64});

void BM_MvmMultiplyLooped(benchmark::State& state) {
  core::MvmConfig cfg;
  cfg.ports = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  core::MvmEngine engine(cfg);
  lina::Rng rng(6);
  engine.set_matrix(lina::random_real(cfg.ports, cfg.ports, rng));
  lina::CMat x(cfg.ports, batch);
  for (std::size_t r = 0; r < cfg.ports; ++r)
    for (std::size_t c = 0; c < batch; ++c)
      x(r, c) = lina::cplx{rng.uniform(-1.0, 1.0), 0.0};
  for (auto _ : state)
    for (std::size_t c = 0; c < batch; ++c)
      benchmark::DoNotOptimize(engine.multiply(x.col(c)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MvmMultiplyLooped)->Args({8, 64})->Args({16, 64});

void BM_IssInstructionRate(benchmark::State& state) {
  // Tight arithmetic loop: measures simulated instructions per host
  // second for the RV32IM interpreter.
  sys::SystemConfig sc;
  sys::rv::Assembler as(sc.dram_base);
  as.li(sys::rv::t0, 0);
  as.li(sys::rv::t1, 1000000);
  as.label("loop");
  as.addi(sys::rv::t0, sys::rv::t0, 1);
  as.blt(sys::rv::t0, sys::rv::t1, "loop");
  as.li(sys::rv::a7, 93);
  as.li(sys::rv::a0, 0);
  as.ecall();
  const auto program = as.assemble();

  for (auto _ : state) {
    sys::System system(sc);
    system.load_program(program);
    const auto r = system.run();
    state.counters["sim_instr"] = static_cast<double>(r.instret);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000002);
}
BENCHMARK(BM_IssInstructionRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
