// E10 — Engineering micro-kernels (google-benchmark): the hot paths of
// the simulator itself. Useful for regression-tracking the framework and
// for sizing larger experiments.
#include <benchmark/benchmark.h>

#include "core/mvm_engine.hpp"
#include "lina/random.hpp"
#include "lina/svd.hpp"
#include "mesh/calibrate.hpp"
#include "mesh/decompose.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;

void BM_HaarUnitary(benchmark::State& state) {
  lina::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(lina::haar_unitary(n, rng));
}
BENCHMARK(BM_HaarUnitary)->Arg(8)->Arg(16)->Arg(32);

void BM_Svd(benchmark::State& state) {
  lina::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat m = lina::ginibre(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lina::svd(m));
}
BENCHMARK(BM_Svd)->Arg(8)->Arg(16)->Arg(32);

void BM_ClementsDecompose(benchmark::State& state) {
  lina::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat u = lina::haar_unitary(n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(mesh::clements_decompose(u));
}
BENCHMARK(BM_ClementsDecompose)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshTransfer(benchmark::State& state) {
  lina::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pm = mesh::clements_decompose(lina::haar_unitary(n, rng));
  mesh::PhysicalMesh mesh(pm.layout, mesh::MeshErrorModel{});
  mesh.program(pm.phases);
  for (auto _ : state) benchmark::DoNotOptimize(mesh.transfer());
}
BENCHMARK(BM_MeshTransfer)->Arg(8)->Arg(16)->Arg(32);

void BM_Calibrate(benchmark::State& state) {
  lina::Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lina::CMat target = lina::haar_unitary(n, rng);
  mesh::MeshErrorModel em;
  em.coupler_sigma = 0.02;
  for (auto _ : state) {
    state.PauseTiming();
    mesh::PhysicalMesh mesh(mesh::clements_layout(n), em);
    const auto pm = mesh::clements_decompose(target);
    mesh.program(pm.phases);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mesh::calibrate(mesh, target));
  }
}
BENCHMARK(BM_Calibrate)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MvmMultiply(benchmark::State& state) {
  core::MvmConfig cfg;
  cfg.ports = static_cast<std::size_t>(state.range(0));
  core::MvmEngine engine(cfg);
  lina::Rng rng(6);
  engine.set_matrix(lina::random_real(cfg.ports, cfg.ports, rng));
  const lina::CVec x = lina::random_state(cfg.ports, rng);
  for (auto _ : state) benchmark::DoNotOptimize(engine.multiply(x));
}
BENCHMARK(BM_MvmMultiply)->Arg(8)->Arg(16);

void BM_IssInstructionRate(benchmark::State& state) {
  // Tight arithmetic loop: measures simulated instructions per host
  // second for the RV32IM interpreter.
  sys::SystemConfig sc;
  sys::rv::Assembler as(sc.dram_base);
  as.li(sys::rv::t0, 0);
  as.li(sys::rv::t1, 1000000);
  as.label("loop");
  as.addi(sys::rv::t0, sys::rv::t0, 1);
  as.blt(sys::rv::t0, sys::rv::t1, "loop");
  as.li(sys::rv::a7, 93);
  as.li(sys::rv::a0, 0);
  as.ecall();
  const auto program = as.assemble();

  for (auto _ : state) {
    sys::System system(sc);
    system.load_program(program);
    const auto r = system.run();
    state.counters["sim_instr"] = static_cast<double>(r.instret);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000002);
}
BENCHMARK(BM_IssInstructionRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
