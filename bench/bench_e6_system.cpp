// E6 — Full-system evaluation of the photonic DSA behind a RISC-V host.
// Paper Section 5 / Fig. 3: gem5-based platform with MMRs, SPMs, DMA and
// interrupts "so the host can utilize the provided interrupt signals for
// synchronization without the need for constant polling".
//
// Series 1: cycles for software GEMM vs offload paths across input widths.
// Series 2: weight-technology impact on offload latency (thermo ~10 us
//           programming vs PCM ~110 ns).
// Series 3: PE-cluster scaling — exposes that the workload is IO-bound on
//           the shared bus (the data-movement bottleneck of Section 1).
#include "bench_util.hpp"
#include "lina/random.hpp"
#include "sysim/system.hpp"
#include "sysim/workloads.hpp"

namespace {

using namespace aspen;
using namespace aspen::sys;

std::vector<std::int16_t> random_fixed(std::size_t count, std::uint64_t seed) {
  lina::Rng rng(seed);
  std::vector<std::int16_t> v(count);
  for (auto& x : v) x = PhotonicAccelerator::to_fixed(rng.uniform(-0.9, 0.9));
  return v;
}

std::uint64_t run_cycles(const SystemConfig& sc, const GemmWorkload& wl,
                         const std::vector<std::uint32_t>& program,
                         const std::vector<std::int16_t>& a,
                         const std::vector<std::int16_t>& x) {
  System system(sc);
  stage_gemm_data(system, wl, a, x);
  system.load_program(program);
  const auto r = system.run();
  if (r.halt != rv::Halt::kEcallExit) return 0;
  return r.cycles;
}

SystemConfig pcm_system() {
  SystemConfig sc;
  sc.accel.gemm.mvm.ports = 8;
  sc.accel.gemm.mvm.weights = core::WeightTechnology::kPcm;
  sc.accel.gemm.mvm.pcm.level_bits = 8;
  sc.accel.max_cols = 128;
  return sc;
}

}  // namespace

int main() {
  bench::header("E6  system-level offload (RISC-V host + photonic DSA)",
                "Sec.5/Fig.3: CPU, MMRs, SPMs, DMA, interrupts");

  {
    lina::Table t("cycles vs input width (8x8 weights, 1 GHz, PCM weights)");
    t.set_header({"M", "software", "MMR poll", "MMR irq", "DMA irq",
                  "best speedup"});
    for (std::size_t m : {8u, 32u, 128u}) {
      const SystemConfig sc = pcm_system();
      GemmWorkload wl;
      wl.n = 8;
      wl.m = m;
      const auto a = random_fixed(wl.n * wl.n, 40 + m);
      const auto x = random_fixed(wl.n * wl.m, 50 + m);
      const auto sw = run_cycles(sc, wl, build_gemm_software(wl, sc), a, x);
      const auto poll = run_cycles(
          sc, wl, build_gemm_offload(wl, sc, OffloadPath::kMmrPolling), a, x);
      const auto irq = run_cycles(
          sc, wl, build_gemm_offload(wl, sc, OffloadPath::kMmrInterrupt), a,
          x);
      const auto dma = run_cycles(
          sc, wl, build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt), a,
          x);
      t.add_row({lina::Table::num(double(m)), lina::Table::num(double(sw)),
                 lina::Table::num(double(poll)), lina::Table::num(double(irq)),
                 lina::Table::num(double(dma)),
                 lina::Table::num(double(sw) / double(dma), 1) + "x"});
    }
    bench::show(t);
  }

  {
    lina::Table t("weight technology impact on one offloaded GEMM (M=32, "
                  "DMA path)");
    t.set_header({"weights", "program time", "total cycles"});
    GemmWorkload wl;
    wl.n = 8;
    wl.m = 32;
    const auto a = random_fixed(wl.n * wl.n, 60);
    const auto x = random_fixed(wl.n * wl.m, 61);
    for (const bool pcm : {false, true}) {
      SystemConfig sc = pcm_system();
      sc.accel.gemm.mvm.weights = pcm ? core::WeightTechnology::kPcm
                                      : core::WeightTechnology::kThermoOptic;
      const auto cycles = run_cycles(
          sc, wl, build_gemm_offload(wl, sc, OffloadPath::kDmaInterrupt), a,
          x);
      t.add_row({pcm ? "PCM (non-volatile)" : "thermo-optic",
                 pcm ? "~110 ns" : "~10 us", lina::Table::num(double(cycles))});
    }
    bench::show(t);
  }

  {
    lina::Table t("PE-cluster scaling (M=64 columns partitioned across PEs; "
                  "shared bus + single DMA => IO-bound)");
    t.set_header({"PEs", "cycles", "scaling vs 1 PE"});
    GemmWorkload wl;
    wl.n = 8;
    wl.m = 64;
    const auto a = random_fixed(wl.n * wl.n, 70);
    const auto x = random_fixed(wl.n * wl.m, 71);
    std::uint64_t first = 0;
    for (std::size_t pes : {1u, 2u, 4u}) {
      SystemConfig sc = pcm_system();
      sc.num_pes = pes;
      const auto cycles =
          run_cycles(sc, wl, build_gemm_multi_pe(wl, sc), a, x);
      if (first == 0) first = cycles;
      t.add_row({lina::Table::num(double(pes)),
                 lina::Table::num(double(cycles)),
                 lina::Table::num(double(first) / double(cycles), 2) + "x"});
    }
    bench::show(t);
    std::printf("note: photonic compute is ~ns per tile; the cluster is\n"
                "bandwidth-limited by the shared bus/DMA — the data-movement\n"
                "bottleneck the paper's introduction motivates.\n\n");
  }
  return 0;
}
