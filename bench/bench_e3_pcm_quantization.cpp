// E3 — Multilevel PCM weights: materials, level count, and drift.
// Paper Section 3 / Fig. 2a: "low-loss, compact, and reconfigurable
// multilevel PCM-based MZIs"; GSST & GeSe vs the GST baseline via
// FOM = delta n / delta k.
//
// Series 1: material table (FOM, 2*pi patch length, crystalline loss,
//           N=8 mesh programming fidelity at 64 levels).
// Series 2: programming fidelity + digit accuracy vs PCM level count.
// Series 3: drift of fidelity / accuracy over time since programming.
#include "bench_util.hpp"
#include "core/mvm_engine.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/photonic_backend.hpp"

namespace {

using namespace aspen;

core::MvmConfig engine_config(const phot::PcmCellConfig& pcm) {
  core::MvmConfig cfg;
  cfg.ports = 8;
  cfg.weights = core::WeightTechnology::kPcm;
  cfg.pcm = pcm;
  return cfg;
}

double mesh_fidelity(const phot::PcmCellConfig& pcm) {
  core::MvmEngine engine(engine_config(pcm));
  lina::Rng rng(5);
  engine.set_matrix(lina::random_real(8, 8, rng));
  return engine.programming_fidelity();
}

}  // namespace

int main() {
  bench::header("E3  multilevel PCM weights",
                "Sec.3/Fig.2a: multilevel PCM MZIs; FOM = dn/dk selects "
                "GSST/GeSe over GST");

  // -- Series 1: materials ------------------------------------------------
  {
    lina::Table t("PCM material comparison (patch sized for 2*pi)");
    t.set_header({"material", "FOM dn/dk", "patch um", "IL@cryst dB",
                  "mesh fidelity (64 lvl)"});
    for (const auto& m :
         {phot::make_gst225(), phot::make_gsst(), phot::make_gese()}) {
      const auto cfg = phot::pcm_config_for_two_pi(m);
      const phot::PcmCell cell(cfg);
      const double amp = cell.amplitude_of_fraction(1.0);
      t.add_row({m.name, lina::Table::num(m.figure_of_merit(), 1),
                 lina::Table::num(cfg.patch_length_m * 1e6, 1),
                 lina::Table::num(-20.0 * std::log10(amp), 2),
                 lina::Table::num(mesh_fidelity(cfg), 4)});
    }
    bench::show(t);
  }

  // Train one MLP shared by series 2 and 3.
  lina::Rng rng(7);
  const nn::Dataset data = nn::make_digits(25, rng, 0.08);
  const nn::Split split = nn::split_dataset(data, 0.7, rng);
  nn::Mlp mlp({64, 16, 10}, rng);
  mlp.train(split.train, 80, 0.15, 25, rng);
  const double digital_acc = mlp.accuracy(split.test);
  std::printf("digital reference accuracy: %.3f (test n=%zu)\n\n",
              digital_acc, split.test.size());

  // -- Series 2: level count sweep (GeSe) ---------------------------------
  {
    lina::Table t("accuracy vs PCM level count (GeSe, N=8 tiles)");
    t.set_header({"level bits", "levels", "mesh fidelity", "digits accuracy"});
    for (int bits : {1, 2, 3, 4, 5, 6, 8}) {
      auto pcm = phot::pcm_config_for_two_pi(phot::make_gese());
      pcm.level_bits = bits;
      nn::PhotonicBackendConfig bc;
      bc.gemm.mvm = engine_config(pcm);
      nn::PhotonicBackend backend(bc);
      t.add_row({lina::Table::num(bits), lina::Table::num(double(1 << bits)),
                 lina::Table::num(mesh_fidelity(pcm), 4),
                 lina::Table::num(backend.accuracy(mlp, split.test), 3)});
    }
    bench::show(t);
  }

  // -- Series 3: drift ------------------------------------------------------
  {
    lina::Table t("drift since programming (GeSe, 6-bit levels, no "
                  "recalibration)");
    t.set_header({"time", "mesh fidelity", "digits accuracy"});
    const auto pcm = phot::pcm_config_for_two_pi(phot::make_gese());
    struct Point {
      const char* label;
      double seconds;
    };
    for (const auto& p :
         {Point{"0 s", 0.0}, Point{"1 hour", 3600.0}, Point{"1 day", 86400.0},
          Point{"30 days", 2.6e6}, Point{"1 year", 3.15e7},
          Point{"10 years", 3.15e8}}) {
      core::MvmEngine engine(engine_config(pcm));
      lina::Rng wrng(5);
      engine.set_matrix(lina::random_real(8, 8, wrng));
      engine.set_pcm_drift_time(p.seconds);
      nn::PhotonicBackendConfig bc;
      bc.gemm.mvm = engine_config(pcm);
      nn::PhotonicBackend backend(bc);
      backend.set_pcm_drift_time(p.seconds);
      t.add_row({p.label,
                 lina::Table::num(engine.programming_fidelity(), 5),
                 lina::Table::num(backend.accuracy(mlp, split.test), 3)});
    }
    bench::show(t);
  }
  return 0;
}
